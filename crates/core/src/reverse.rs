//! The §6 reverse-engineering experiment suite.
//!
//! Each function reproduces one of the paper's experiments against a
//! module seen only through its DDR command interface, and returns a
//! typed finding. [`classify`] orchestrates them into a [`TrrProfile`]
//! that can be compared against a module's ground truth (the Table 1
//! columns).

use dram_sim::{Bank, RowAddr};
use softmc::{HammerMode, HammerSpec, MemoryController};

use crate::analyzer::{Experiment, TrrAnalyzer, VictimOutcome};
use crate::error::UtrrError;
use crate::recovery::{self, PhaseBudget, VerdictTier};
use crate::rowscout::ProfiledRowGroup;

/// How a TRR mechanism detects aggressor rows, as uncovered by the
/// experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectionKind {
    /// Vendor-A style: a counter table (§6.1).
    Counter {
        /// Maximum rows tracked per bank (Observation A4).
        capacity: usize,
        /// Whether detection resets the detected counter (Observation A6).
        counters_reset: bool,
        /// Whether entries persist until evicted (Observation A7).
        persistent_entries: bool,
    },
    /// Vendor-B style: probabilistic ACT sampling (§6.2).
    Sampler {
        /// Whether one sample register is shared across banks
        /// (Observation B4).
        shared_across_banks: bool,
    },
    /// Vendor-C style: a bounded activation window after each
    /// TRR-induced refresh (§6.3).
    Window {
        /// Upper bound on the tracked activation window (Observation C2).
        max_window: u64,
    },
}

/// The complete reverse-engineered profile of a TRR mechanism — the
/// U-TRR output that Table 1 summarizes per module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrrProfile {
    /// One TRR-capable `REF` every this many `REF` commands.
    pub trr_ref_ratio: u64,
    /// Victim rows refreshed per detection.
    pub neighbors_refreshed: u32,
    /// The detection mechanism.
    pub detection: DetectionKind,
    /// Whether TRR acts on each bank independently at a TRR-capable REF.
    pub per_bank: bool,
}

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReverseOptions {
    /// Hammers per aggressor in detection-triggering experiments (the
    /// paper uses up to 5K; it must stay below the RowHammer threshold).
    pub trigger_hammers: u64,
    /// Iterations for the TRR-capable-REF search.
    pub ratio_iterations: u32,
    /// Iterations for capacity / persistence style experiments.
    pub long_iterations: u32,
    /// Per-phase ACT-budget circuit breaker: each `discover_*` phase
    /// closes with the partial evidence it has once it consumes this
    /// many row activations (see [`PhaseBudget`]). `None` — the default
    /// and the fault-free shape — leaves every phase unbounded and
    /// changes nothing.
    pub phase_act_budget: Option<u64>,
}

impl Default for ReverseOptions {
    fn default() -> Self {
        ReverseOptions {
            trigger_hammers: 600,
            ratio_iterations: 72,
            long_iterations: 400,
            phase_act_budget: None,
        }
    }
}

/// Most `read_check` / sub-verdict IDs a single verdict event cites:
/// enough to walk a causal timeline, bounded so long discovery runs
/// don't grow unbounded evidence lists.
const EVIDENCE_CAP: usize = 64;

/// Appends `ids` to `evidence` up to [`EVIDENCE_CAP`].
fn push_evidence(evidence: &mut Vec<u64>, ids: &[u64]) {
    let room = EVIDENCE_CAP.saturating_sub(evidence.len());
    evidence.extend(ids.iter().take(room));
}

/// Emits a `verdict` trace event citing `evidence` (the `read_check`
/// events, or sub-verdicts, it was concluded from). A no-op returning
/// `None` when tracing is off.
fn emit_verdict(
    mc: &MemoryController,
    bank: Bank,
    detail: &str,
    fields: &[(&str, u64)],
    evidence: &[u64],
) -> Option<u64> {
    mc.registry().trace_with_evidence(
        obs::TraceKind::Verdict,
        mc.now().as_ns(),
        u32::from(bank.index()),
        None,
        fields,
        detail,
        evidence,
    )
}

/// Runs one iteration of the canonical detection experiment: hammer each
/// group's aggressor, issue one `REF`, infer refreshes. Returns the
/// per-group "TRR-refreshed" flags, the `REF` index consumed, and the
/// iteration's `read_check` trace-event IDs (empty when tracing is off).
fn detection_iteration(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    groups: &[ProfiledRowGroup],
    hammers: &[u64],
    refs: u64,
) -> Result<(Vec<bool>, u64, Vec<u64>), UtrrError> {
    let Some(retention) = groups.iter().map(|g| g.retention).min() else {
        return Err(UtrrError::EmptyInput);
    };
    let victims: Vec<RowAddr> = groups.iter().flat_map(|g| g.victim_rows()).collect();
    let aggressors: Vec<(RowAddr, u64)> =
        groups.iter().zip(hammers).map(|(g, &h)| (g.aggressors[0], h)).collect();
    let mut exp = Experiment::on_group(bank, &groups[0]);
    exp.victims = victims;
    exp.retention = retention;
    exp.hammer = HammerSpec { aggressors, mode: HammerMode::Cascaded };
    exp.refs_per_round = refs;
    let outcome = analyzer.run(mc, &exp)?;
    // Fold per-victim outcomes back into per-group flags.
    let mut flags = Vec::with_capacity(groups.len());
    let mut idx = 0;
    for g in groups {
        let n = g.rows.len();
        let hit = outcome.victims[idx..idx + n].contains(&VictimOutcome::TrrRefresh);
        flags.push(hit);
        idx += n;
    }
    Ok((flags, outcome.ref_start, outcome.evidence))
}

/// §6.1.1 / §6.2.1 / §6.3: which `REF` commands are TRR-capable.
/// Hammers every group's aggressor each iteration and issues exactly one
/// `REF`; the interval between iterations that refresh a victim is the
/// TRR-to-REF ratio (Observations A1, B1, C1).
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_trr_ref_ratio(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    groups: &[ProfiledRowGroup],
    opts: &ReverseOptions,
) -> Result<Option<u64>, UtrrError> {
    let avoid: Vec<RowAddr> = groups.iter().flat_map(|g| g.victim_rows()).collect();
    crate::analyzer::flush_tracker(mc, bank, &avoid, 32)?;
    let hammers = vec![opts.trigger_hammers; groups.len()];
    let mut hit_refs = Vec::new();
    let mut evidence = Vec::new();
    // The slowest shipped ratio is 17 and pointer-walk observability can
    // be sparse, so give the search enough REFs for several TRR slots
    // regardless of the caller's budget.
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for _ in 0..opts.ratio_iterations.max(170) {
        if budget.exhausted(mc, bank) {
            break;
        }
        let (flags, ref_start, ids) = detection_iteration(mc, analyzer, bank, groups, &hammers, 1)?;
        if flags.iter().any(|&f| f) {
            hit_refs.push(ref_start + 1);
            push_evidence(&mut evidence, &ids);
        }
    }
    if hit_refs.len() < 3 {
        emit_verdict(mc, bank, "trr_ref_ratio", &[("hits", hit_refs.len() as u64)], &evidence);
        return Ok(None);
    }
    // The very first hit may be a *deferred* TRR refresh left pending by
    // low-activation phases before the experiment (vendor C defers its
    // slot until a candidate exists — Observation C1), so it can sit off
    // the TRR-capable grid: treat it as warm-up and drop it.
    let hit_refs = &hit_refs[1..];
    // With regular refreshes filtered by the learned schedules, every
    // remaining TRR detection lands on a TRR-capable REF, so all gaps
    // between hits are exact multiples of the ratio: their gcd recovers
    // it even when some TRR slots go unobserved.
    let gcd = hit_refs.windows(2).map(|w| w[1] - w[0]).fold(0u64, |acc, d| {
        let (mut a, mut b) = (acc, d);
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    });
    emit_verdict(
        mc,
        bank,
        "trr_ref_ratio",
        &[("ratio", gcd), ("hits", (hit_refs.len() + 1) as u64)],
        &evidence,
    );
    Ok((gcd > 0).then_some(gcd))
}

/// §6.1.1 Observation A2 / §6.2.1 Observation B2: how many neighbours a
/// TRR detection refreshes. Uses a neighbour-probe group (`RRARR`:
/// profiled rows at ±1 and ±2 of the aggressor) and reports the maximum
/// number of profiled rows ever refreshed by a single TRR-capable `REF`.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_neighbors_refreshed(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    probe_group: &ProfiledRowGroup,
    opts: &ReverseOptions,
) -> Result<u32, UtrrError> {
    let aggressor = probe_group.aggressors[0];
    let exp = Experiment::on_group(bank, probe_group)
        .with_hammer(HammerSpec::single_sided(aggressor, opts.trigger_hammers))
        .with_refs(1);
    let mut max_refreshed = 0u32;
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for _ in 0..opts.ratio_iterations {
        if budget.exhausted(mc, bank) {
            break;
        }
        let outcome = analyzer.run(mc, &exp)?;
        let refreshed = outcome.trr_victims().len() as u32;
        if refreshed > max_refreshed {
            evidence.clear();
            push_evidence(&mut evidence, &outcome.evidence);
        }
        max_refreshed = max_refreshed.max(refreshed);
    }
    emit_verdict(
        mc,
        bank,
        "neighbors_refreshed",
        &[("count", u64::from(max_refreshed))],
        &evidence,
    );
    Ok(max_refreshed)
}

/// §6.1.2 Observation A4: counter-table capacity. For `n` in
/// `2..=groups.len()`, hammers the first `n` groups' aggressors every
/// iteration and checks whether *every* group is eventually refreshed;
/// the largest fully-covered `n` is the capacity.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_counter_capacity(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    groups: &[ProfiledRowGroup],
    trr_ref_ratio: u64,
    opts: &ReverseOptions,
) -> Result<usize, UtrrError> {
    let avoid: Vec<RowAddr> = groups.iter().flat_map(|g| g.victim_rows()).collect();
    // The max-count detector fires once per 2×ratio REFs (TREF_a
    // alternates with the pointer walk), so boosting one aggressor per
    // such block steers exactly one detection to it — a full rotation
    // covers every group in n blocks, with no aliasing against the REF
    // cadence. (The ratio is known at this point: the paper also runs
    // the TRR-capable-REF experiment first.)
    let block = (2 * trr_ref_ratio.max(1)) as u32;
    let mut capacity = 0;
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for n in 2..=groups.len() {
        if budget.tripped() {
            break;
        }
        // Stale counters from the previous sweep step would keep TREF_a
        // busy and stall coverage: reset the tracker (Requirement 4).
        crate::analyzer::flush_tracker(mc, bank, &avoid, 32)?;
        let subset = &groups[..n];
        let mut covered = vec![false; n];
        for iter in 0..opts.long_iterations.max(block * (groups.len() as u32 + 4)) {
            if budget.exhausted(mc, bank) {
                break;
            }
            // Boost one aggressor per TRR-REF block: with equal counts a
            // deterministic max-count tie-break would keep detecting the
            // same entry forever, stalling coverage.
            let boosted = (iter / block) as usize % n;
            let hammers: Vec<u64> =
                (0..n).map(|i| opts.trigger_hammers + if i == boosted { 512 } else { 0 }).collect();
            let (flags, _, ids) = detection_iteration(mc, analyzer, bank, subset, &hammers, 1)?;
            if flags.iter().any(|&f| f) {
                push_evidence(&mut evidence, &ids);
            }
            for (c, f) in covered.iter_mut().zip(&flags) {
                *c |= *f;
            }
            if covered.iter().all(|&c| c) {
                break;
            }
        }
        if covered.iter().all(|&c| c) {
            capacity = n;
        } else {
            break;
        }
    }
    emit_verdict(mc, bank, "counter_capacity", &[("capacity", capacity as u64)], &evidence);
    Ok(capacity)
}

/// §6.1.2 Observation A5: eviction policy probe. Hammers the first
/// group's aggressor a *few* times, then the remaining groups' aggressors
/// many times, every iteration; returns `true` when the low-count,
/// first-hammered aggressor is never detected (it is always evicted).
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_eviction_of_low_count_row(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    groups: &[ProfiledRowGroup],
    opts: &ReverseOptions,
) -> Result<bool, UtrrError> {
    let avoid: Vec<RowAddr> = groups.iter().flat_map(|g| g.victim_rows()).collect();
    crate::analyzer::flush_tracker(mc, bank, &avoid, 32)?;
    let mut hammers = vec![100u64; groups.len()];
    hammers[0] = 50;
    let mut weak_detected = false;
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for _ in 0..opts.long_iterations {
        if budget.exhausted(mc, bank) {
            break;
        }
        let (flags, _, ids) = detection_iteration(mc, analyzer, bank, groups, &hammers, 1)?;
        push_evidence(&mut evidence, &ids);
        if flags[0] {
            weak_detected = true;
            break;
        }
    }
    emit_verdict(
        mc,
        bank,
        "eviction_of_low_count_row",
        &[("always_evicted", u64::from(!weak_detected))],
        &evidence,
    );
    Ok(!weak_detected)
}

/// §6.1.2 Observation A6: counter reset on detection. Hammers two
/// aggressors with unequal counts every iteration; with per-detection
/// counter resets, *both* aggressors are detected over time (the
/// higher-count one more often). Returns `(low detections, high
/// detections)`.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_counter_reset(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    groups: &[ProfiledRowGroup; 2],
    opts: &ReverseOptions,
) -> Result<(u32, u32), UtrrError> {
    let avoid: Vec<RowAddr> = groups.iter().flat_map(|g| g.victim_rows()).collect();
    crate::analyzer::flush_tracker(mc, bank, &avoid, 32)?;
    let hammers = vec![opts.trigger_hammers * 2 / 3, opts.trigger_hammers];
    let mut low = 0;
    let mut high = 0;
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for _ in 0..opts.long_iterations {
        if budget.exhausted(mc, bank) {
            break;
        }
        let (flags, _, ids) = detection_iteration(mc, analyzer, bank, &groups[..], &hammers, 1)?;
        if flags[0] || flags[1] {
            push_evidence(&mut evidence, &ids);
        }
        if flags[0] {
            low += 1;
        }
        if flags[1] {
            high += 1;
        }
    }
    emit_verdict(
        mc,
        bank,
        "counter_reset",
        &[("low", u64::from(low)), ("high", u64::from(high))],
        &evidence,
    );
    Ok((low, high))
}

/// §6.1.2 Observation A7: table persistence. Hammers the group's
/// aggressor once, then runs hammer-free iterations; returns the number
/// of TRR refreshes observed in the tail half of the run (a persistent
/// table keeps re-detecting the stale entry via the pointer walk).
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_table_persistence(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    group: &ProfiledRowGroup,
    opts: &ReverseOptions,
) -> Result<u32, UtrrError> {
    crate::analyzer::flush_tracker(mc, bank, &group.victim_rows(), 32)?;
    // Insert the aggressor into the tracker once.
    let seed_exp = Experiment::on_group(bank, group)
        .with_hammer(HammerSpec::single_sided(group.aggressors[0], opts.trigger_hammers))
        .with_refs(1);
    analyzer.run(mc, &seed_exp)?;
    // Then never touch it again. A pointer-walk re-detection recurs only
    // once every table-size × 2 × ratio REFs (~288 for vendor A), so the
    // idle run must be long enough to see the tail half of at least two
    // walks.
    let iterations = opts.long_iterations.max(640);
    let idle_exp = Experiment::on_group(bank, group).with_refs(1);
    let mut tail_hits = 0;
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for i in 0..iterations {
        if budget.exhausted(mc, bank) {
            break;
        }
        let outcome = analyzer.run(mc, &idle_exp)?;
        if outcome.any_trr() && i >= iterations / 2 {
            tail_hits += 1;
            push_evidence(&mut evidence, &outcome.evidence);
        }
    }
    emit_verdict(mc, bank, "table_persistence", &[("tail_hits", u64::from(tail_hits))], &evidence);
    Ok(tail_hits)
}

/// §6.2.2 Observation B3: sampling probe. Each iteration hammers the
/// first group's aggressor `trigger_hammers` times, then the second
/// group's aggressor `second_hammers` times (cascaded, so the second is
/// the most recent), and issues `refs` `REF`s. Returns the fraction of
/// TRR refreshes that hit the *second* group — a sampler overwhelmingly
/// detects the most recently hammered row, while a counter table detects
/// the higher-count one.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_last_hammered_bias(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    groups: &[ProfiledRowGroup; 2],
    second_hammers: u64,
    refs: u64,
    opts: &ReverseOptions,
) -> Result<f64, UtrrError> {
    let hammers = vec![opts.trigger_hammers.max(second_hammers + 1), second_hammers];
    let mut second = 0u32;
    let mut total = 0u32;
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for _ in 0..opts.ratio_iterations {
        if budget.exhausted(mc, bank) {
            break;
        }
        let (flags, _, ids) = detection_iteration(mc, analyzer, bank, &groups[..], &hammers, refs)?;
        if flags[0] || flags[1] {
            total += 1;
            push_evidence(&mut evidence, &ids);
            if flags[1] && !flags[0] {
                second += 1;
            }
        }
    }
    emit_verdict(
        mc,
        bank,
        "last_hammered_bias",
        &[("second", u64::from(second)), ("total", u64::from(total))],
        &evidence,
    );
    Ok(if total == 0 { 0.0 } else { second as f64 / total as f64 })
}

/// §6.2.2 Observation B4: is the sampler shared across banks? Hammers an
/// aggressor in `groups[0]`'s bank, then one in `groups[1]`'s (different)
/// bank, and issues `REF`s. With a shared register the first bank's
/// victims are never refreshed; per-bank trackers refresh both. Returns
/// `(first-bank hits, second-bank hits)`.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_cross_bank_sharing(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    banks: [Bank; 2],
    groups: &[ProfiledRowGroup; 2],
    opts: &ReverseOptions,
) -> Result<(u32, u32), UtrrError> {
    // The two groups come from independent Row Scout runs and may sit in
    // different retention buckets; a single shared decay window would
    // leave the longer-retention group's victims permanently clean
    // (false TRR hits). Stagger instead: initialize the longer group
    // first and read it last, so each group decays exactly its own
    // retention when unrefreshed.
    let (short, long) =
        if groups[0].retention <= groups[1].retention { (0usize, 1usize) } else { (1, 0) };
    let t_short = groups[short].retention;
    let t_long = groups[long].retention;
    let mut hits = [0u32; 2];
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for _ in 0..opts.ratio_iterations {
        if budget.exhausted(mc, banks[0]) {
            break;
        }
        for &v in &groups[long].victim_rows() {
            crate::robust::write_row_checked(mc, banks[long], v, &groups[long].pattern)?;
        }
        mc.wait_no_refresh((t_long - t_short) / 2);
        for &v in &groups[short].victim_rows() {
            crate::robust::write_row_checked(mc, banks[short], v, &groups[short].pattern)?;
        }
        mc.wait_no_refresh(t_short / 2);
        let ref_start = mc.module().ref_count();
        let active_start = mc.now();
        // Hammer bank 0's aggressor first, bank 1's second — the order
        // is the experiment: a shared register keeps only the later one.
        for (bank, group) in banks.iter().zip(groups.iter()) {
            mc.module_mut().hammer(*bank, group.aggressors[0], opts.trigger_hammers)?;
        }
        mc.refresh(1);
        let ref_end = mc.module().ref_count();
        let active = mc.now() - active_start;
        mc.wait_no_refresh((t_short / 2).saturating_sub(active));
        let mut record = |mc: &mut MemoryController, i: usize| -> Result<(), UtrrError> {
            let mut trr_hit = false;
            for &v in &groups[i].victim_rows() {
                let clean = crate::robust::read_row_voted(mc, banks[i], v)?.is_clean();
                // Filter regular refreshes via the learned schedules,
                // like every other experiment.
                let regular = analyzer
                    .schedule(v)
                    .is_some_and(|schedule| schedule.covers(ref_start, ref_end));
                let trr = clean && !regular;
                let id = mc.registry().trace(
                    obs::TraceKind::ReadCheck,
                    mc.now().as_ns(),
                    u32::from(banks[i].index()),
                    Some(mc.module().phys_of(v).index()),
                    &[("clean", u64::from(clean))],
                    if trr { "trr_refresh" } else { "no_trr" },
                );
                if trr {
                    trr_hit = true;
                    if let Some(id) = id {
                        push_evidence(&mut evidence, &[id]);
                    }
                }
            }
            if trr_hit {
                hits[i] += 1;
            }
            Ok(())
        };
        record(mc, short)?;
        mc.wait_no_refresh((t_long - t_short) / 2);
        record(mc, long)?;
    }
    emit_verdict(
        mc,
        banks[0],
        "cross_bank_sharing",
        &[("first", u64::from(hits[0])), ("second", u64::from(hits[1]))],
        &evidence,
    );
    Ok((hits[0], hits[1]))
}

/// §6.3 Observation C2: the activation window. Each iteration fills the
/// window with `filler` dummy-row activations *before* hammering the
/// aggressor; once `filler` reaches the window size, the aggressor is
/// never detected. Returns the smallest probed filler count at which
/// detections stop, or `None` if detections never stop.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn discover_act_window(
    mc: &mut MemoryController,
    analyzer: &TrrAnalyzer,
    bank: Bank,
    group: &ProfiledRowGroup,
    probes: &[u64],
    opts: &ReverseOptions,
) -> Result<Option<u64>, UtrrError> {
    let dummies = mc.pick_dummy_rows(&group.victim_rows(), 100, 1);
    // Window trackers bias detection towards *early* activations, so an
    // aggressor sitting late in the window is captured rarely; cover the
    // whole tail of plausible windows and give each probe plenty of
    // capture cycles before concluding "never detected".
    let aggressor_hammers = 2_048u64;
    let iterations = opts.long_iterations.max(360);
    let faulty = mc.faults_enabled();
    let mut evidence = Vec::new();
    let mut budget = PhaseBudget::begin(mc, opts.phase_act_budget);
    for &filler in probes {
        if budget.tripped() {
            break;
        }
        let mut exp = Experiment::on_group(bank, group)
            .with_hammer(HammerSpec::single_sided(group.aggressors[0], aggressor_hammers))
            .with_dummies(dummies.clone(), filler)
            .with_refs(1);
        exp.dummies_first = true;
        let mut detected = false;
        if faulty {
            // Injected faults leave stray TRR verdicts at a rate of
            // well under 1% of iterations (drift shifts the slot phase,
            // VRT bursts fake a refresh), so a single detection cannot
            // condemn a filler count. Genuine capture — a counter or
            // sampler that still sees the aggressor through the filler
            // — lands at ~5% of iterations; split the two regimes at
            // 2%.
            let threshold = (iterations / 50).max(1);
            let mut hits = 0u32;
            for _ in 0..iterations {
                if budget.exhausted(mc, bank) {
                    break;
                }
                let outcome = analyzer.run(mc, &exp)?;
                if outcome.any_trr() {
                    hits += 1;
                    if hits > threshold {
                        push_evidence(&mut evidence, &outcome.evidence);
                        detected = true;
                        break;
                    }
                }
            }
        } else {
            for _ in 0..iterations {
                if budget.exhausted(mc, bank) {
                    break;
                }
                let outcome = analyzer.run(mc, &exp)?;
                if outcome.any_trr() {
                    push_evidence(&mut evidence, &outcome.evidence);
                    detected = true;
                    break;
                }
            }
        }
        if budget.tripped() {
            // A truncated probe can't distinguish "never detected" from
            // "ran out of budget before a detection": don't conclude a
            // window from it.
            break;
        }
        if !detected {
            emit_verdict(mc, bank, "act_window", &[("window", filler)], &evidence);
            return Ok(Some(filler));
        }
    }
    emit_verdict(mc, bank, "act_window", &[], &evidence);
    Ok(None)
}

/// Runs the discrimination pipeline and assembles a [`TrrProfile`].
///
/// `pair_groups` are `RAR` groups (at least two; 17+ for an exact
/// counter-capacity answer), `probe_group` is an `RRARR` group, and
/// `cross_bank` optionally provides a second-bank `RAR` group for the
/// shared-sampler test.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn classify(
    mc: &mut MemoryController,
    bank: Bank,
    pair_groups: &[ProfiledRowGroup],
    probe_group: &ProfiledRowGroup,
    cross_bank: Option<(Bank, &ProfiledRowGroup)>,
    opts: &ReverseOptions,
) -> Result<TrrProfile, UtrrError> {
    classify_recover(mc, bank, pair_groups, probe_group, cross_bank, opts, VerdictTier::Confirmed)
        .map(|(profile, _)| profile)
}

/// [`classify`] under the recovery ladder, returning the profile
/// together with its [`VerdictTier`]. `initial_tier` carries what the
/// earlier pipeline phases (the scout scans) already know — the
/// returned tier and the final verdict trace event both reflect the
/// merged pipeline confidence, not just classification's own.
///
/// Below [`recovery::LADDER_SEVERITY`] this *is* `classify` (same
/// commands, same errors) with a `Confirmed` tier bolted on. With the
/// ladder active:
///
/// * a group whose regular-refresh schedule cannot be learned is
///   dropped from the experiment set instead of aborting the whole
///   classification (tier reason `schedule`) — as long as at least two
///   pair groups survive;
/// * any `discover_*` phase whose [`ReverseOptions::phase_act_budget`]
///   breaker trips closes with partial evidence (tier reason
///   `act-budget`).
///
/// # Errors
///
/// [`UtrrError::ScheduleNotFound`] when fewer than two pair groups
/// survive schedule learning; experiment errors are propagated.
pub fn classify_recover(
    mc: &mut MemoryController,
    bank: Bank,
    pair_groups: &[ProfiledRowGroup],
    probe_group: &ProfiledRowGroup,
    cross_bank: Option<(Bank, &ProfiledRowGroup)>,
    opts: &ReverseOptions,
    initial_tier: VerdictTier,
) -> Result<(TrrProfile, VerdictTier), UtrrError> {
    let ladder = recovery::ladder_active(mc);
    let mut tier = initial_tier;
    let trips_before = mc.recovery().budget_trips;
    // Learn the regular-refresh schedule of every profiled row first, so
    // that periodic regular refreshes are never misattributed to TRR.
    let mut analyzer = TrrAnalyzer::new();
    let mut surviving: Vec<ProfiledRowGroup> = Vec::with_capacity(pair_groups.len());
    for group in pair_groups {
        match crate::schedule::learn_group_schedules(mc, bank, group, &mut analyzer) {
            Ok(()) => surviving.push(group.clone()),
            Err(UtrrError::ScheduleNotFound) if ladder => tier.degrade("schedule"),
            Err(e) => return Err(e),
        }
    }
    if surviving.len() < 2 {
        return Err(UtrrError::ScheduleNotFound);
    }
    let pair_groups: &[ProfiledRowGroup] = &surviving;
    match crate::schedule::learn_group_schedules(mc, bank, probe_group, &mut analyzer) {
        Ok(()) => {}
        // A probe group without learned schedules still runs its
        // experiments; regular refreshes just can't be subtracted for
        // it, which the degraded tier records.
        Err(UtrrError::ScheduleNotFound) if ladder => tier.degrade("schedule"),
        Err(e) => return Err(e),
    }
    let cross_bank = match cross_bank {
        Some((other_bank, other_group)) => {
            match crate::schedule::learn_group_schedules(mc, other_bank, other_group, &mut analyzer)
            {
                Ok(()) => Some((other_bank, other_group)),
                Err(UtrrError::ScheduleNotFound) if ladder => {
                    tier.degrade("schedule");
                    None
                }
                Err(e) => return Err(e),
            }
        }
        None => None,
    };
    let analyzer = analyzer;

    // Watermark the trace-id space so the final verdict can cite the
    // per-discovery verdicts emitted below (and only those).
    let verdict_mark = mc.registry().recorder().map_or(0, |r| r.next_id_hint());

    // Ratio discovery uses a small subset of groups: every profiled row
    // is activated at least twice per iteration (init write + readback),
    // and on window-based trackers those early activations would crowd
    // the aggressors out of the capture window.
    // Two ratio passes: a small group set keeps window-tracker capture
    // on the aggressors (victim-init activations would crowd an
    // early-biased window), while a large set fills counter tables so
    // both TREF flavours land on experiment rows (the paper's N ≥ 16).
    // Every observed gap is a multiple of the true ratio, so the finer
    // of the two answers wins.
    let small = &pair_groups[..pair_groups.len().min(4)];
    let large = &pair_groups[..pair_groups.len().min(16)];
    let ratio_small = discover_trr_ref_ratio(mc, &analyzer, bank, small, opts)?;
    let ratio_large = discover_trr_ref_ratio(mc, &analyzer, bank, large, opts)?;
    let ratio = match (ratio_small, ratio_large) {
        (Some(a), Some(b)) => a.min(b),
        (a, b) => a.or(b).unwrap_or(0),
    };
    let neighbors = discover_neighbors_refreshed(mc, &analyzer, bank, probe_group, opts)?;

    // Sampler discriminator: does the last-hammered row dominate even
    // with fewer hammers?
    let two: &[ProfiledRowGroup; 2] = &[pair_groups[0].clone(), pair_groups[1].clone()];
    let last_bias = discover_last_hammered_bias(
        mc,
        &analyzer,
        bank,
        two,
        opts.trigger_hammers / 2,
        ratio.max(1),
        opts,
    )?;

    // Window discriminator: does pre-filling activations hide the
    // aggressor?
    let window = discover_act_window(
        mc,
        &analyzer,
        bank,
        &pair_groups[0],
        &[512, 1_024, 2_048, 4_096, 8_192],
        opts,
    )?;

    let detection = if let Some(w) = window {
        DetectionKind::Window { max_window: w }
    } else if last_bias > 0.8 {
        let shared = match cross_bank {
            Some((other_bank, other_group)) => {
                let (first, _second) = discover_cross_bank_sharing(
                    mc,
                    &analyzer,
                    [bank, other_bank],
                    &[pair_groups[0].clone(), other_group.clone()],
                    opts,
                )?;
                first == 0
            }
            None => false,
        };
        DetectionKind::Sampler { shared_across_banks: shared }
    } else {
        let capacity =
            discover_counter_capacity(mc, &analyzer, bank, pair_groups, ratio.max(1), opts)?;
        let (low, high) = discover_counter_reset(
            mc,
            &analyzer,
            bank,
            &[pair_groups[0].clone(), pair_groups[1].clone()],
            opts,
        )?;
        let persistence = discover_table_persistence(mc, &analyzer, bank, &pair_groups[0], opts)?;
        DetectionKind::Counter {
            capacity,
            counters_reset: low > 0 && high > 0,
            persistent_entries: persistence > 0,
        }
    };

    let per_bank = match (&detection, cross_bank) {
        (DetectionKind::Sampler { shared_across_banks }, _) => !shared_across_banks,
        _ => true,
    };

    if mc.recovery().budget_trips > trips_before {
        tier.degrade("act-budget");
    }

    // The final verdict cites the per-discovery verdicts as evidence:
    // the explain tool walks detection → sub-verdicts → read_checks.
    if let Some(recorder) = mc.registry().recorder() {
        let sub_verdicts: Vec<u64> = recorder
            .snapshot()
            .0
            .iter()
            .filter(|e| e.kind == obs::TraceKind::Verdict && e.id >= verdict_mark)
            .map(|e| e.id)
            .take(EVIDENCE_CAP)
            .collect();
        let kind = match &detection {
            DetectionKind::Counter { .. } => "detection:counter",
            DetectionKind::Sampler { .. } => "detection:sampler",
            DetectionKind::Window { .. } => "detection:window",
        };
        // The tier rides on the verdict event only when the ladder is
        // active, so mild/fault-free trace streams stay byte-identical.
        // A non-confirmed tier also spells out its reasons in the
        // detail, which is what `utrr-trace explain` renders.
        let mut fields = vec![
            ("ratio", ratio),
            ("neighbors", u64::from(neighbors)),
            ("per_bank", u64::from(per_bank)),
        ];
        let mut detail = kind.to_string();
        if ladder {
            fields.push(("tier", tier.code()));
            if !tier.is_confirmed() {
                detail = format!("{kind} [{}: {}]", tier.label(), tier.reasons_string());
            }
        }
        emit_verdict(mc, bank, &detail, &fields, &sub_verdicts);
    }

    Ok((
        TrrProfile { trr_ref_ratio: ratio, neighbors_refreshed: neighbors, detection, per_bank },
        tier,
    ))
}
