//! Row Scout (RS): the retention-time profiler (§4 of the paper).
//!
//! RS finds *row groups* — sets of rows in a prescribed physical layout
//! whose retention times fall in the same bucket — and validates that
//! each row's retention time is consistent (filtering out rows afflicted
//! by Variable Retention Time, which would corrupt the TRR Analyzer's
//! refresh inference).
//!
//! The implementation follows Fig. 6 of the paper:
//!
//! 1. scan the configured row range for rows that fail within `T` but
//!    hold comfortably at `T/2` (the half-margin is what lets TRR-A split
//!    the decay window around the hammer phase);
//! 2. assemble candidate groups matching the requested
//!    [`RowGroupLayout`];
//! 3. if too few candidates, increase `T` and start over;
//! 4. validate every row of every candidate group `consistency_checks`
//!    times (the paper uses 1000) — VRT rows flunk;
//! 5. return the validated groups.
//!
//! On top of the paper's loop, the scout is hardened against transient
//! device faults (see the `faults` crate): reads are majority-voted and
//! writes verified when a fault injector is active, failed validation
//! checks get a bounded retry, rows that keep misbehaving land on a
//! quarantine list with a recorded [`QuarantineReason`], and
//! [`RowScout::scan_report`] returns a partial [`ScoutReport`] instead
//! of an opaque error when the scan cannot complete. All of the extra
//! device traffic is gated on [`MemoryController::faults_enabled`] (or
//! the opt-in [`ScoutConfig::vrt_probe`]), so a fault-free scan issues
//! exactly the command sequence it always did.

use std::collections::BTreeMap;

use dram_sim::{Bank, DataPattern, Nanos, PhysRow, RowAddr};
use softmc::MemoryController;

use crate::arena;
use crate::error::UtrrError;
use crate::layout::RowGroupLayout;
use crate::recovery::{self, DriftEstimator, VerdictTier};
use crate::robust;

/// Counter: validation checks retried by the scout (fault-aware mode).
pub const CTR_SCOUT_RETRIES: &str = "utrr.rowscout.retries";
/// Counter: rows quarantined by the scout.
pub const CTR_SCOUT_QUARANTINED: &str = "utrr.rowscout.quarantined";

/// Relocation attempts [`RowScout::scan_recover`] makes when the
/// configured window cannot satisfy the request under a hostile fault
/// profile.
pub const RELOCATION_ATTEMPTS: u32 = 3;

/// SplitMix64 mixing step — the deterministic seeded search behind
/// window relocation (self-contained so the core crate stays free of a
/// faults-crate dependency).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic relocation seed derived purely from the profiling
/// configuration, so relocated windows are identical at any thread
/// count and across resumed runs.
fn relocation_seed(cfg: &ScoutConfig) -> u64 {
    let geometry = (u64::from(cfg.row_start) << 32)
        | u64::from(cfg.row_end) ^ (u64::from(cfg.bank.index()) << 56);
    mix64(geometry ^ (cfg.group_count as u64).rotate_left(17))
}

/// Whether `candidate` shares any physical row with an already-accepted
/// group (including the one-row guard band the scan keeps between
/// groups).
fn overlaps_any(groups: &[ProfiledRowGroup], candidate: &ProfiledRowGroup, span: u32) -> bool {
    let base = candidate.base.index();
    groups.iter().any(|g| {
        let other = g.base.index();
        base <= other + span + 1 && other <= base + span + 1
    })
}

/// Profiling configuration (the "Profiling Config" box of Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoutConfig {
    /// Bank to profile.
    pub bank: Bank,
    /// Physical row range `[start, end)` to search.
    pub row_start: u32,
    /// End of the physical row range (exclusive).
    pub row_end: u32,
    /// Requested group layout.
    pub layout: RowGroupLayout,
    /// Number of validated groups to find.
    pub group_count: usize,
    /// Initial retention interval `T` (paper: e.g. 100 ms).
    pub initial_retention: Nanos,
    /// `T` increment per outer iteration (paper: e.g. 50 ms).
    pub retention_step: Nanos,
    /// Give up once `T` exceeds this.
    pub max_retention: Nanos,
    /// Validation repetitions per row (paper: 1000).
    pub consistency_checks: u32,
    /// Data pattern used for profiling; TRR-A must reuse it.
    pub pattern: DataPattern,
    /// Optional row-activation budget for the whole scan: once the
    /// module's cumulative ACT count has grown by this much, the scan
    /// stops early and [`RowScout::scan_report`] reports whatever was
    /// found so far (graceful degradation instead of unbounded retries).
    pub max_acts: Option<u64>,
    /// Opt-in extended VRT probe: track bit-level failure signatures
    /// across validation checks and probe each candidate group at a
    /// ladder of longer decay horizons, quarantining rows whose
    /// signature is unstable. Costs extra commands, so it is off by
    /// default and a plain scan stays command-for-command identical to
    /// previous releases.
    pub vrt_probe: bool,
}

impl ScoutConfig {
    /// A reasonable default configuration over the first `row_end`
    /// physical rows of a bank.
    pub fn new(bank: Bank, row_end: u32, layout: RowGroupLayout, group_count: usize) -> Self {
        ScoutConfig {
            bank,
            row_start: 0,
            row_end,
            layout,
            group_count,
            initial_retention: Nanos::from_ms(100),
            retention_step: Nanos::from_ms(50),
            max_retention: Nanos::from_ms(6_000),
            consistency_checks: 100,
            pattern: DataPattern::Ones,
            max_acts: None,
            vrt_probe: false,
        }
    }
}

/// One retention-profiled row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfiledRow {
    /// Logical address (what the controller issues).
    pub row: RowAddr,
    /// Physical position (what adjacency is computed in).
    pub phys: PhysRow,
}

/// A validated row group: profiled rows plus the aggressor positions of
/// the layout, all sharing the retention bucket `retention`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfiledRowGroup {
    /// The retention-profiled rows, in layout order.
    pub rows: Vec<ProfiledRow>,
    /// Logical addresses of the layout's aggressor positions.
    pub aggressors: Vec<RowAddr>,
    /// The retention bucket: every row holds at `retention / 2` and
    /// fails at `retention` when unrefreshed.
    pub retention: Nanos,
    /// Physical position of the group base (layout offset 0).
    pub base: PhysRow,
    /// The pattern the rows were profiled with.
    pub pattern: DataPattern,
}

impl ProfiledRowGroup {
    /// Logical addresses of the profiled rows.
    pub fn victim_rows(&self) -> Vec<RowAddr> {
        self.rows.iter().map(|r| r.row).collect()
    }
}

/// Why Row Scout gave up on a candidate row (mirroring the paper's VRT
/// filtering, plus the failure modes transient device faults add).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The row read clean after the full retention interval during
    /// validation — its failure vanished, the signature VRT flap.
    VrtFlap,
    /// The row failed before the 0.55 T early margin — its effective
    /// retention drifted below the bucket.
    RetentionDrift,
    /// The row's contents could not be written reliably even with
    /// verified-write retries.
    WriteUnstable,
    /// The row failed with a different bit set across repeated checks at
    /// the same horizon — a VRT cell toggling inside (or probed above)
    /// the bucket.
    UnstableFlips,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QuarantineReason::VrtFlap => "vrt-flap",
            QuarantineReason::RetentionDrift => "retention-drift",
            QuarantineReason::WriteUnstable => "write-unstable",
            QuarantineReason::UnstableFlips => "unstable-flips",
        })
    }
}

/// Diagnostics for one quarantined row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowDiagnostics {
    /// Logical address of the quarantined row.
    pub row: RowAddr,
    /// Physical position of the quarantined row.
    pub phys: PhysRow,
    /// Why the row was given up on.
    pub reason: QuarantineReason,
    /// Validation retries spent on the row's group before giving up.
    pub retries: u32,
}

/// The full outcome of a scan: validated groups plus everything the
/// scout had to give up on — a partial result with diagnostics instead
/// of an opaque error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoutReport {
    /// Validated groups from the best retention pass (at most
    /// `requested`).
    pub groups: Vec<ProfiledRowGroup>,
    /// Groups the configuration asked for.
    pub requested: usize,
    /// Rows that failed validation, with the reason, in physical-row
    /// order (first recorded reason wins when a row fails repeatedly).
    pub quarantined: Vec<RowDiagnostics>,
    /// Validation checks that were retried (fault-aware mode only).
    pub retries: u64,
    /// Whether the [`ScoutConfig::max_acts`] budget stopped the scan.
    pub budget_exhausted: bool,
    /// Row activations the scan consumed.
    pub acts_used: u64,
}

impl ScoutReport {
    /// Whether the scan found every requested group.
    pub fn is_complete(&self) -> bool {
        self.groups.len() >= self.requested
    }
}

/// Mutable bookkeeping threaded through one scan.
struct ScanState {
    acts_start: u64,
    max_acts: Option<u64>,
    budget_exhausted: bool,
    retries: u64,
    quarantined: BTreeMap<u32, RowDiagnostics>,
    /// Drift-adaptive validation margins (level 0 reproduces the static
    /// 1.05×/0.5× faulty margins exactly, so mild scans are unchanged).
    drift: DriftEstimator,
}

impl ScanState {
    fn new(acts_start: u64, max_acts: Option<u64>, drift: DriftEstimator) -> Self {
        ScanState {
            acts_start,
            max_acts,
            budget_exhausted: false,
            retries: 0,
            quarantined: BTreeMap::new(),
            drift,
        }
    }

    /// Checks (and latches) the ACT budget. Issues no device commands,
    /// so with no budget configured the scan's traffic is untouched.
    fn budget_spent(&mut self, mc: &MemoryController) -> bool {
        if self.budget_exhausted {
            return true;
        }
        if let Some(max) = self.max_acts {
            if mc.module().stats().activations - self.acts_start >= max {
                self.budget_exhausted = true;
            }
        }
        self.budget_exhausted
    }

    fn note_quarantine(&mut self, diag: RowDiagnostics) {
        self.quarantined.entry(diag.phys.index()).or_insert(diag);
    }

    fn is_quarantined(&self, phys: u32) -> bool {
        self.quarantined.contains_key(&phys)
    }
}

/// Row Scout: see the [module docs](self).
///
/// # Example
///
/// ```no_run
/// use dram_sim::{Bank, Module, ModuleConfig};
/// use softmc::MemoryController;
/// use utrr_core::{RowScout, ScoutConfig, RowGroupLayout};
///
/// # fn main() -> Result<(), utrr_core::UtrrError> {
/// let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 1));
/// let config = ScoutConfig::new(
///     Bank::new(0), 1024, RowGroupLayout::single_aggressor_pair(), 2);
/// let groups = RowScout::new(config).scan(&mut mc)?;
/// assert_eq!(groups.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RowScout {
    config: ScoutConfig,
}

impl RowScout {
    /// Creates a scout for the given profiling configuration.
    pub fn new(config: ScoutConfig) -> Self {
        RowScout { config }
    }

    /// The profiling configuration.
    pub fn config(&self) -> &ScoutConfig {
        &self.config
    }

    /// Runs the Fig. 6 loop and returns `group_count` validated groups.
    ///
    /// The whole scan runs under a `utrr.rowscout.scan` span, with one
    /// `utrr.rowscout.pass` child span per retention interval tried; the
    /// `utrr.rowscout.groups_found` counter records validated groups.
    ///
    /// # Errors
    ///
    /// [`UtrrError::NotEnoughRowGroups`] if the retention ceiling (or
    /// the configured ACT budget) is reached first; device errors are
    /// propagated.
    pub fn scan(&self, mc: &mut MemoryController) -> Result<Vec<ProfiledRowGroup>, UtrrError> {
        let report = self.scan_report(mc)?;
        if report.is_complete() {
            let mut groups = report.groups;
            groups.truncate(self.config.group_count);
            Ok(groups)
        } else {
            Err(UtrrError::NotEnoughRowGroups {
                found: report.groups.len(),
                needed: self.config.group_count,
                max_retention: self.config.max_retention,
            })
        }
    }

    /// Runs the Fig. 6 loop under the escalating recovery ladder and
    /// returns whatever profile evidence could be assembled, tiered:
    ///
    /// * a complete scan is `Confirmed` (relocations and re-profiles
    ///   along the way don't degrade the tier — the evidence is whole);
    /// * an incomplete scan relocates the window to fresh subarray
    ///   regions via a deterministic seeded search (up to
    ///   [`RELOCATION_ATTEMPTS`] shifts, each recorded on the ladder)
    ///   and, if still short, returns the partial groups as
    ///   `Degraded { scout-shortfall }` (plus `act-budget` when the ACT
    ///   budget stopped a pass);
    /// * only a scan with *zero* groups is an error.
    ///
    /// The [`DriftEstimator`] persists across relocation attempts, so
    /// margin escalations learned in one window carry into the next.
    /// Below [`recovery::LADDER_SEVERITY`] this behaves exactly like
    /// [`RowScout::scan`] — the ladder stays locked and mild/fault-free
    /// command streams are untouched.
    ///
    /// # Errors
    ///
    /// [`UtrrError::NotEnoughRowGroups`] only when no group at all
    /// validated; device errors are propagated.
    pub fn scan_recover(
        &self,
        mc: &mut MemoryController,
    ) -> Result<(Vec<ProfiledRowGroup>, VerdictTier), UtrrError> {
        let cfg = &self.config;
        let mut drift = DriftEstimator::default();
        let report = self.scan_report_with(mc, &mut drift)?;
        let mut budget_hit = report.budget_exhausted;
        let mut groups = report.groups;
        if groups.len() >= cfg.group_count {
            groups.truncate(cfg.group_count);
            return Ok((groups, VerdictTier::Confirmed));
        }
        if !recovery::ladder_active(mc) {
            return Err(UtrrError::NotEnoughRowGroups {
                found: groups.len(),
                needed: cfg.group_count,
                max_retention: cfg.max_retention,
            });
        }
        let span = cfg.layout.span();
        let range = cfg.row_end.saturating_sub(cfg.row_start);
        let mut seed = relocation_seed(cfg);
        for _ in 0..RELOCATION_ATTEMPTS {
            if groups.len() >= cfg.group_count {
                break;
            }
            seed = mix64(seed);
            let slack = range.saturating_sub(span + 1).max(1);
            let mut sub_cfg = cfg.clone();
            sub_cfg.row_start = cfg.row_start + (seed % u64::from(slack)) as u32;
            sub_cfg.group_count = cfg.group_count - groups.len();
            mc.recovery_mut().relocations += 1;
            recovery::ladder_event(mc, recovery::CTR_RELOCATIONS, "relocate", cfg.bank, None);
            let sub = RowScout::new(sub_cfg).scan_report_with(mc, &mut drift)?;
            budget_hit |= sub.budget_exhausted;
            for group in sub.groups {
                if !overlaps_any(&groups, &group, span) {
                    groups.push(group);
                }
            }
        }
        groups.truncate(cfg.group_count);
        if groups.len() >= cfg.group_count {
            return Ok((groups, VerdictTier::Confirmed));
        }
        if groups.is_empty() {
            return Err(UtrrError::NotEnoughRowGroups {
                found: 0,
                needed: cfg.group_count,
                max_retention: cfg.max_retention,
            });
        }
        let mut tier = VerdictTier::Confirmed;
        tier.degrade("scout-shortfall");
        if budget_hit {
            tier.degrade("act-budget");
        }
        Ok((groups, tier))
    }

    /// Runs the Fig. 6 loop and returns a [`ScoutReport`]: the groups
    /// that validated plus quarantine diagnostics, retry counts, and
    /// budget state — a partial result where [`RowScout::scan`] would
    /// return an opaque error.
    ///
    /// # Errors
    ///
    /// Device errors are propagated; an incomplete scan is *not* an
    /// error here.
    pub fn scan_report(&self, mc: &mut MemoryController) -> Result<ScoutReport, UtrrError> {
        self.scan_report_with(mc, &mut DriftEstimator::default())
    }

    /// [`RowScout::scan_report`] with caller-owned drift-margin state,
    /// so [`RowScout::scan_recover`] keeps escalated margins across
    /// relocated windows.
    fn scan_report_with(
        &self,
        mc: &mut MemoryController,
        drift: &mut DriftEstimator,
    ) -> Result<ScoutReport, UtrrError> {
        let registry = std::sync::Arc::clone(mc.registry());
        let span = obs::span!(
            registry,
            "utrr.rowscout.scan",
            mc.now().as_ns(),
            rows = (self.config.row_end - self.config.row_start) as u64,
            groups_wanted = self.config.group_count as u64
        );
        let result = self.scan_report_inner(mc, drift);
        if let Ok(report) = &result {
            registry.counter("utrr.rowscout.groups_found").add(report.groups.len() as u64);
            registry.counter(CTR_SCOUT_QUARANTINED).add(report.quarantined.len() as u64);
            registry.counter(CTR_SCOUT_RETRIES).add(report.retries);
        }
        span.finish(mc.now().as_ns());
        result
    }

    fn scan_report_inner(
        &self,
        mc: &mut MemoryController,
        drift: &mut DriftEstimator,
    ) -> Result<ScoutReport, UtrrError> {
        let cfg = &self.config;
        let acts_start = mc.module().stats().activations;
        let mut state = ScanState::new(acts_start, cfg.max_acts, *drift);
        let mut best: Vec<ProfiledRowGroup> = Vec::new();
        let mut retention = cfg.initial_retention;
        while retention <= cfg.max_retention && !state.budget_spent(mc) {
            let registry = std::sync::Arc::clone(mc.registry());
            let pass = obs::span!(
                registry,
                "utrr.rowscout.pass",
                mc.now().as_ns(),
                retention_ms = retention.as_ns() / 1_000_000
            );
            let groups = self.scan_at(mc, retention, &mut state);
            pass.finish(mc.now().as_ns());
            let groups = groups?;
            if groups.len() > best.len() {
                best = groups;
            }
            if best.len() >= cfg.group_count {
                break;
            }
            retention += cfg.retention_step;
        }
        *drift = state.drift;
        Ok(ScoutReport {
            groups: best,
            requested: cfg.group_count,
            quarantined: state.quarantined.into_values().collect(),
            retries: state.retries,
            budget_exhausted: state.budget_exhausted,
            acts_used: mc.module().stats().activations - acts_start,
        })
    }

    /// One outer iteration at a fixed `T`: bucket scan, candidate
    /// assembly, validation.
    fn scan_at(
        &self,
        mc: &mut MemoryController,
        retention: Nanos,
        state: &mut ScanState,
    ) -> Result<Vec<ProfiledRowGroup>, UtrrError> {
        let cfg = &self.config;
        // Rows failing within T…
        let mut bucket = arena::take_bools();
        self.failing_rows(mc, retention, &mut bucket)?;
        // …minus rows that fail too early (before they could survive the
        // first half-window of a TRR-A experiment; footnote 4): folded
        // into the same buffer, so a scan pass allocates nothing once the
        // thread's scratch pool is warm.
        let mut fail_early = arena::take_bools();
        self.failing_rows(mc, retention * 55 / 100, &mut fail_early)?;
        for (late, &early) in bucket.iter_mut().zip(&fail_early) {
            *late = *late && !early;
        }
        arena::recycle_bools(fail_early);

        // Skipping known-bad rows changes which candidates get probed,
        // so it only kicks in under fault injection or the opt-in VRT
        // probe — a plain scan's command stream stays untouched.
        let skip_quarantined = mc.faults_enabled() || cfg.vrt_probe;
        let mut groups = Vec::new();
        let mut base = cfg.row_start;
        let span = cfg.layout.span();
        while base + span <= cfg.row_end && groups.len() < cfg.group_count {
            if state.budget_spent(mc) {
                break;
            }
            let in_bucket = cfg
                .layout
                .profiled()
                .iter()
                .all(|&off| bucket[(base + off - cfg.row_start) as usize]);
            let quarantined = skip_quarantined
                && cfg.layout.profiled().iter().any(|&off| state.is_quarantined(base + off));
            if in_bucket && !quarantined {
                let group = self.assemble_group(mc, base, retention);
                match self.validate_group(mc, &group, state)? {
                    None => {
                        // Skip past this group (plus a guard row) so groups
                        // never overlap.
                        base += span + 1;
                        groups.push(group);
                        continue;
                    }
                    Some(diag) => state.note_quarantine(diag),
                }
            }
            base += 1;
        }
        arena::recycle_bools(bucket);
        Ok(groups)
    }

    /// Writes the pattern to the whole range, decays it for `wait`, and
    /// fills `failed` with per-row failure flags (cleared first, so a
    /// recycled scratch buffer can be passed directly).
    fn failing_rows(
        &self,
        mc: &mut MemoryController,
        wait: Nanos,
        failed: &mut Vec<bool>,
    ) -> Result<(), UtrrError> {
        let cfg = &self.config;
        for phys in cfg.row_start..cfg.row_end {
            let row = mc.module().logical_of(PhysRow::new(phys));
            mc.write_row(cfg.bank, row, cfg.pattern.clone())?;
        }
        mc.wait_no_refresh(wait);
        failed.clear();
        failed.reserve((cfg.row_end - cfg.row_start) as usize);
        for phys in cfg.row_start..cfg.row_end {
            let row = mc.module().logical_of(PhysRow::new(phys));
            failed.push(!mc.read_row(cfg.bank, row)?.is_clean());
        }
        Ok(())
    }

    fn assemble_group(
        &self,
        mc: &MemoryController,
        base: u32,
        retention: Nanos,
    ) -> ProfiledRowGroup {
        let cfg = &self.config;
        let rows = cfg
            .layout
            .profiled()
            .iter()
            .map(|&off| {
                let phys = PhysRow::new(base + off);
                ProfiledRow { row: mc.module().logical_of(phys), phys }
            })
            .collect();
        let aggressors = cfg
            .layout
            .aggressors()
            .iter()
            .map(|&off| mc.module().logical_of(PhysRow::new(base + off)))
            .collect();
        ProfiledRowGroup {
            rows,
            aggressors,
            retention,
            base: PhysRow::new(base),
            pattern: cfg.pattern.clone(),
        }
    }

    /// Paper: "RS validates the retention time of a row one thousand
    /// times to ensure its consistency over time." Each check verifies
    /// both sides of the bucket: the row must fail after `T` and hold
    /// after `0.55 T`. Returns `None` when the group is valid, or the
    /// diagnostics of the first offending row.
    ///
    /// Under fault injection a failed check is retried a bounded number
    /// of times before the row is quarantined, because a single
    /// injected fault can mimic every quarantine signature; fault-free,
    /// the first failure is final (as before).
    fn validate_group(
        &self,
        mc: &mut MemoryController,
        group: &ProfiledRowGroup,
        state: &mut ScanState,
    ) -> Result<Option<RowDiagnostics>, UtrrError> {
        let mut signatures: Vec<Option<Vec<u32>>> = vec![None; group.rows.len()];
        let result = self.validate_group_inner(mc, group, state, &mut signatures);
        for sig in signatures.into_iter().flatten() {
            arena::recycle_u32(sig);
        }
        result
    }

    fn validate_group_inner(
        &self,
        mc: &mut MemoryController,
        group: &ProfiledRowGroup,
        state: &mut ScanState,
        signatures: &mut [Option<Vec<u32>>],
    ) -> Result<Option<RowDiagnostics>, UtrrError> {
        let cfg = &self.config;
        let faulty = mc.faults_enabled();
        let ladder = recovery::ladder_active(mc);
        let max_retries: u32 = if ladder {
            3
        } else if faulty {
            2
        } else {
            0
        };
        let track_flips = faulty || cfg.vrt_probe;
        let mut retries_spent = 0u32;
        for _ in 0..cfg.consistency_checks {
            // The rows must fail after the full interval T…
            let mut attempt = 0u32;
            loop {
                match self.check_fails_at_t(mc, group, track_flips, signatures, state.drift)? {
                    None => break,
                    Some((profiled, reason)) => {
                        if ladder && reason == QuarantineReason::VrtFlap {
                            state.drift.note_margin_failure(mc, cfg.bank, profiled.row);
                        }
                        if attempt < max_retries && reason != QuarantineReason::WriteUnstable {
                            attempt += 1;
                            retries_spent += 1;
                            state.retries += 1;
                            self.trace_retry(mc, &profiled, reason, attempt);
                            continue;
                        }
                        return Ok(Some(RowDiagnostics {
                            row: profiled.row,
                            phys: profiled.phys,
                            reason,
                            retries: retries_spent,
                        }));
                    }
                }
            }
            // …and must still hold at the 0.55 T early margin.
            let mut attempt = 0u32;
            loop {
                match self.check_holds_at_margin(mc, group, state.drift)? {
                    None => break,
                    Some((profiled, reason)) => {
                        if ladder && reason == QuarantineReason::RetentionDrift {
                            state.drift.note_margin_failure(mc, cfg.bank, profiled.row);
                        }
                        if attempt < max_retries && reason != QuarantineReason::WriteUnstable {
                            attempt += 1;
                            retries_spent += 1;
                            state.retries += 1;
                            self.trace_retry(mc, &profiled, reason, attempt);
                            continue;
                        }
                        return Ok(Some(RowDiagnostics {
                            row: profiled.row,
                            phys: profiled.phys,
                            reason,
                            retries: retries_spent,
                        }));
                    }
                }
            }
        }
        if cfg.vrt_probe {
            if let Some((profiled, reason)) = self.probe_vrt_ladder(mc, group)? {
                return Ok(Some(RowDiagnostics {
                    row: profiled.row,
                    phys: profiled.phys,
                    reason,
                    retries: retries_spent,
                }));
            }
        }
        Ok(None)
    }

    /// Flight-recorder event for one retried validation check.
    fn trace_retry(
        &self,
        mc: &MemoryController,
        profiled: &ProfiledRow,
        reason: QuarantineReason,
        attempt: u32,
    ) {
        mc.registry().trace(
            obs::TraceKind::ScoutRetry,
            mc.now().as_ns(),
            u32::from(self.config.bank.index()),
            Some(profiled.phys.index()),
            &[("attempt", u64::from(attempt))],
            &reason.to_string(),
        );
    }

    /// One "must fail at T" validation check. With `track_flips`, also
    /// requires the failure *signature* (the exact flipped-bit set) to
    /// repeat across checks: a VRT cell toggling inside the bucket
    /// changes the signature even while the row keeps failing.
    ///
    /// On a faulty substrate the decay window is stretched — by 5% at
    /// drift level 0 (headroom past the injected retention-drift
    /// amplitude, so a row profiled right at `T` still fails when the
    /// environment runs a couple of percent "cold"), and further as the
    /// [`DriftEstimator`] escalates under hostile drift. VRT swings are
    /// ~3×, far outside any margin level, so the flap detection keeps
    /// its teeth. Fault-free the wait is exactly `T`, keeping the
    /// command stream unchanged.
    fn check_fails_at_t(
        &self,
        mc: &mut MemoryController,
        group: &ProfiledRowGroup,
        track_flips: bool,
        signatures: &mut [Option<Vec<u32>>],
        drift: DriftEstimator,
    ) -> Result<Option<(ProfiledRow, QuarantineReason)>, UtrrError> {
        let cfg = &self.config;
        for profiled in &group.rows {
            if !robust::write_row_checked(mc, cfg.bank, profiled.row, &cfg.pattern)? {
                return Ok(Some((*profiled, QuarantineReason::WriteUnstable)));
            }
        }
        let wait = if mc.faults_enabled() {
            let (num, den) = drift.wait_margin();
            group.retention * num / den
        } else {
            group.retention
        };
        mc.wait_no_refresh(wait);
        for (i, profiled) in group.rows.iter().enumerate() {
            let readout = robust::read_row_voted(mc, cfg.bank, profiled.row)?;
            if readout.is_clean() {
                return Ok(Some((*profiled, QuarantineReason::VrtFlap)));
            }
            if track_flips {
                // Compare against the recorded signature in place; a
                // buffer is taken from the scratch pool only the first
                // time a row's signature is seen.
                match &signatures[i] {
                    Some(prev) if prev.as_slice() != readout.flipped_bits() => {
                        return Ok(Some((*profiled, QuarantineReason::UnstableFlips)));
                    }
                    Some(_) => {}
                    None => {
                        let mut sig = arena::take_u32();
                        sig.extend_from_slice(readout.flipped_bits());
                        signatures[i] = Some(sig);
                    }
                }
            }
        }
        Ok(None)
    }

    /// One "must hold at 0.55 T" validation check. On a faulty
    /// substrate the margin tightens to `0.5 T` at drift level 0 — the
    /// mirror image of [`Self::check_fails_at_t`]'s stretched window,
    /// so a bucket row whose retention sits just above `0.55 T` isn't
    /// condemned as drifting when the injected environment runs a
    /// couple of percent "hot" — and relaxes further as the
    /// [`DriftEstimator`] escalates. Fault-free the wait is exactly
    /// `0.55 T` as before.
    fn check_holds_at_margin(
        &self,
        mc: &mut MemoryController,
        group: &ProfiledRowGroup,
        drift: DriftEstimator,
    ) -> Result<Option<(ProfiledRow, QuarantineReason)>, UtrrError> {
        let cfg = &self.config;
        for profiled in &group.rows {
            if !robust::write_row_checked(mc, cfg.bank, profiled.row, &cfg.pattern)? {
                return Ok(Some((*profiled, QuarantineReason::WriteUnstable)));
            }
        }
        let margin = if mc.faults_enabled() {
            let (num, den) = drift.hold_margin();
            group.retention * num / den
        } else {
            group.retention * 55 / 100
        };
        mc.wait_no_refresh(margin);
        for profiled in &group.rows {
            if !robust::read_row_voted(mc, cfg.bank, profiled.row)?.is_clean() {
                return Ok(Some((*profiled, QuarantineReason::RetentionDrift)));
            }
        }
        Ok(None)
    }

    /// Extended VRT probe (opt-in via [`ScoutConfig::vrt_probe`]): a
    /// candidate row can hide a VRT cell whose retention sits entirely
    /// *above* the bucket — invisible to the consistency checks at `T`.
    /// Probe a ladder of longer horizons (×1.3 per rung, up to 6.5 T,
    /// past the ~3× retention swing VRT cells exhibit) and require the
    /// failure signature at every rung to repeat across trials. Between
    /// trials, short restore/decay churn cycles give any VRT cell
    /// plenty of chances to toggle state while being watched.
    ///
    /// Each rung runs under both solid data polarities, not just the
    /// profiling pattern: a cell only leaks when the stored bit equals
    /// its charged value, so a one-pattern probe is blind to every cell
    /// of the opposite polarity (the paper profiles with a pattern *and
    /// its inverse* for exactly this reason, §3.1).
    fn probe_vrt_ladder(
        &self,
        mc: &mut MemoryController,
        group: &ProfiledRowGroup,
    ) -> Result<Option<(ProfiledRow, QuarantineReason)>, UtrrError> {
        let cfg = &self.config;
        let ceiling = group.retention * 13 / 2;
        let mut signatures: Vec<Option<Vec<u32>>> = Vec::with_capacity(group.rows.len());
        for pattern in [DataPattern::Ones, DataPattern::Zeros] {
            let mut horizon = group.retention * 13 / 10;
            while horizon <= ceiling {
                signatures.clear();
                signatures.resize_with(group.rows.len(), || None);
                for _trial in 0..4 {
                    for _churn in 0..8 {
                        for profiled in &group.rows {
                            mc.write_row(cfg.bank, profiled.row, pattern.clone())?;
                        }
                        mc.wait_no_refresh(Nanos::from_ms(2));
                    }
                    for profiled in &group.rows {
                        mc.write_row(cfg.bank, profiled.row, pattern.clone())?;
                    }
                    mc.wait_no_refresh(horizon);
                    for (i, profiled) in group.rows.iter().enumerate() {
                        let readout = robust::read_row_voted(mc, cfg.bank, profiled.row)?;
                        match &signatures[i] {
                            Some(prev) if prev.as_slice() != readout.flipped_bits() => {
                                return Ok(Some((*profiled, QuarantineReason::UnstableFlips)));
                            }
                            Some(_) => {}
                            None => {
                                let mut sig = arena::take_u32();
                                sig.extend_from_slice(readout.flipped_bits());
                                signatures[i] = Some(sig);
                            }
                        }
                    }
                }
                for sig in signatures.drain(..).flatten() {
                    arena::recycle_u32(sig);
                }
                horizon = horizon * 13 / 10;
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Module, ModuleConfig, RowMapping};

    fn controller(seed: u64) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::small_test(), seed))
    }

    fn scout(layout: &str, count: usize) -> RowScout {
        let layout: RowGroupLayout = layout.parse().unwrap();
        RowScout::new(ScoutConfig::new(Bank::new(0), 1024, layout, count))
    }

    #[test]
    fn finds_single_aggressor_pairs() {
        let mut mc = controller(11);
        let groups = scout("RAR", 3).scan(&mut mc).unwrap();
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.rows.len(), 2);
            assert_eq!(g.aggressors.len(), 1);
            // Layout geometry: profiled rows two apart, aggressor between.
            assert_eq!(g.rows[1].phys.index() - g.rows[0].phys.index(), 2);
        }
    }

    #[test]
    fn groups_do_not_overlap() {
        let mut mc = controller(11);
        let groups = scout("RAR", 4).scan(&mut mc).unwrap();
        for w in groups.windows(2) {
            assert!(w[1].base.index() >= w[0].base.index() + 4);
        }
    }

    #[test]
    fn profiled_rows_fail_at_t_and_hold_at_half_t() {
        let mut mc = controller(13);
        let groups = scout("RAR", 2).scan(&mut mc).unwrap();
        for g in &groups {
            for p in &g.rows {
                mc.write_row(g.pattern_bank(), p.row, g.pattern.clone()).unwrap();
                mc.wait_no_refresh(g.retention);
                assert!(!mc.read_row(g.pattern_bank(), p.row).unwrap().is_clean());
                mc.write_row(g.pattern_bank(), p.row, g.pattern.clone()).unwrap();
                mc.wait_no_refresh(g.retention / 2);
                assert!(mc.read_row(g.pattern_bank(), p.row).unwrap().is_clean());
            }
        }
    }

    #[test]
    fn validated_rows_have_stable_binding_retention() {
        // What validation must guarantee is not "no VRT cell anywhere"
        // but that the row's observable behaviour is state-independent:
        // a *stable* cell fails inside the bucket, and no cell (in any
        // VRT state) can fail before the early-check margin.
        let mut mc = controller(17);
        let groups = scout("RAR", 3).scan(&mut mc).unwrap();
        for g in &groups {
            let t = g.retention;
            for p in &g.rows {
                let view = mc.module_mut().inspect_row(Bank::new(0), p.row);
                let stable_binds = view.weak_cells.iter().any(|&(_, r, vrt)| !vrt && r < t);
                assert!(stable_binds, "a non-VRT cell must guarantee failure at T");
                let early_margin = t * 55 / 100;
                let none_early = view.weak_cells.iter().all(|&(_, r, _)| r > early_margin);
                assert!(none_early, "no cell may fail before the early margin");
            }
        }
    }

    #[test]
    fn respects_scrambled_mappings() {
        let mut config = ModuleConfig::small_test();
        config.mapping = RowMapping::block_mirror(3);
        let mut mc = MemoryController::new(Module::new(config, 19));
        let groups = scout("RAR", 2).scan(&mut mc).unwrap();
        for g in &groups {
            // Physical geometry must hold even though logical addresses
            // are scrambled.
            assert_eq!(g.rows[1].phys.index() - g.rows[0].phys.index(), 2);
            let phys_of = |r| mc.module().phys_of(r).index();
            assert_eq!(phys_of(g.rows[0].row), g.rows[0].phys.index());
            assert_eq!(phys_of(g.aggressors[0]), g.base.index() + 1);
        }
    }

    #[test]
    fn errors_when_range_cannot_satisfy_request() {
        let mut mc = controller(11);
        let layout: RowGroupLayout = "RARRRRAR".parse().unwrap();
        let mut cfg = ScoutConfig::new(Bank::new(0), 64, layout, 50);
        cfg.max_retention = Nanos::from_ms(400);
        let err = RowScout::new(cfg).scan(&mut mc).unwrap_err();
        assert!(matches!(err, UtrrError::NotEnoughRowGroups { needed: 50, .. }));
    }

    #[test]
    fn larger_probe_layouts_are_findable() {
        let mut mc = controller(23);
        let groups = scout("RRARR", 1).scan(&mut mc).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].rows.len(), 4);
    }

    #[test]
    fn scan_report_matches_scan_on_success() {
        let mut mc = controller(11);
        let groups = scout("RAR", 3).scan(&mut mc).unwrap();
        let mut mc = controller(11);
        let report = scout("RAR", 3).scan_report(&mut mc).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.requested, 3);
        assert_eq!(report.groups, groups);
        assert!(!report.budget_exhausted);
        assert!(report.acts_used > 0);
        // Fault-free there are no verified writes, so no retries, and
        // the only possible quarantine reasons are the paper's two
        // validation failure modes.
        assert_eq!(report.retries, 0);
        for diag in &report.quarantined {
            assert!(
                matches!(diag.reason, QuarantineReason::VrtFlap | QuarantineReason::RetentionDrift),
                "{diag:?}"
            );
            assert_eq!(diag.retries, 0);
        }
    }

    #[test]
    fn act_budget_degrades_gracefully() {
        let mut mc = controller(11);
        let mut cfg =
            ScoutConfig::new(Bank::new(0), 1024, RowGroupLayout::single_aggressor_pair(), 64);
        cfg.max_acts = Some(10_000);
        let report = RowScout::new(cfg.clone()).scan_report(&mut mc).unwrap();
        assert!(report.budget_exhausted);
        assert!(!report.is_complete());
        // scan() over the same exhausted budget surfaces the classic error.
        let mut mc = controller(11);
        let err = RowScout::new(cfg).scan(&mut mc).unwrap_err();
        assert!(matches!(err, UtrrError::NotEnoughRowGroups { .. }));
    }

    /// Command-transparent injector whose only effect is unlocking the
    /// recovery ladder via its severity.
    #[derive(Debug)]
    struct HostileMarker;

    impl softmc::FaultInjector for HostileMarker {
        fn on_read(
            &mut self,
            _bank: Bank,
            _row: RowAddr,
            _readout: &mut dram_sim::RowReadout,
            _now: Nanos,
        ) {
        }

        fn on_write(
            &mut self,
            _bank: Bank,
            _row: RowAddr,
            _pattern: &DataPattern,
            _now: Nanos,
        ) -> softmc::WriteFault {
            softmc::WriteFault::None
        }

        fn on_tick(&mut self, _now: Nanos, _module: &mut dram_sim::Module) {}

        fn severity(&self) -> u8 {
            2
        }
    }

    #[test]
    fn scan_recover_is_confirmed_when_the_scan_completes() {
        let mut mc = controller(11);
        let groups = scout("RAR", 3).scan(&mut mc).unwrap();
        let mut mc = controller(11);
        let (recovered, tier) = scout("RAR", 3).scan_recover(&mut mc).unwrap();
        assert_eq!(recovered, groups);
        assert_eq!(tier, VerdictTier::Confirmed);
        assert_eq!(mc.recovery().relocations, 0);
    }

    #[test]
    fn scan_recover_degrades_with_partial_groups_under_hostile_severity() {
        // A request the window cannot satisfy: scan() errors, but under
        // ladder severity scan_recover relocates and then closes with
        // whatever it found, tiered Degraded.
        let layout: RowGroupLayout = "RAR".parse().unwrap();
        let mut cfg = ScoutConfig::new(Bank::new(0), 128, layout, 40);
        cfg.max_retention = Nanos::from_ms(400);

        let mut mc = controller(11);
        mc.set_fault_injector(Some(Box::new(HostileMarker)));
        assert_eq!(mc.fault_severity(), 2);
        let (groups, tier) = RowScout::new(cfg.clone()).scan_recover(&mut mc).unwrap();
        assert!(!groups.is_empty());
        assert!(groups.len() < 40);
        match &tier {
            VerdictTier::Degraded { reasons } => {
                assert!(reasons.iter().any(|r| r == "scout-shortfall"), "{reasons:?}");
            }
            other => panic!("expected a degraded tier, got {other:?}"),
        }
        assert_eq!(mc.recovery().relocations, u64::from(RELOCATION_ATTEMPTS));
        assert!(mc.registry().counter(recovery::CTR_RELOCATIONS).get() > 0);
        // Relocated windows never produce overlapping groups.
        let span = cfg.layout.span();
        for (i, a) in groups.iter().enumerate() {
            for b in &groups[i + 1..] {
                let (lo, hi) = if a.base.index() <= b.base.index() { (a, b) } else { (b, a) };
                assert!(hi.base.index() > lo.base.index() + span + 1, "{lo:?} overlaps {hi:?}");
            }
        }

        // Without ladder severity the same request stays a hard error.
        let mut mc = controller(11);
        let err = RowScout::new(cfg).scan_recover(&mut mc).unwrap_err();
        assert!(matches!(err, UtrrError::NotEnoughRowGroups { .. }));
    }

    #[test]
    fn quarantine_reasons_have_stable_labels() {
        assert_eq!(QuarantineReason::VrtFlap.to_string(), "vrt-flap");
        assert_eq!(QuarantineReason::RetentionDrift.to_string(), "retention-drift");
        assert_eq!(QuarantineReason::WriteUnstable.to_string(), "write-unstable");
        assert_eq!(QuarantineReason::UnstableFlips.to_string(), "unstable-flips");
    }

    impl ProfiledRowGroup {
        fn pattern_bank(&self) -> Bank {
            Bank::new(0)
        }
    }
}
