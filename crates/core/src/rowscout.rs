//! Row Scout (RS): the retention-time profiler (§4 of the paper).
//!
//! RS finds *row groups* — sets of rows in a prescribed physical layout
//! whose retention times fall in the same bucket — and validates that
//! each row's retention time is consistent (filtering out rows afflicted
//! by Variable Retention Time, which would corrupt the TRR Analyzer's
//! refresh inference).
//!
//! The implementation follows Fig. 6 of the paper:
//!
//! 1. scan the configured row range for rows that fail within `T` but
//!    hold comfortably at `T/2` (the half-margin is what lets TRR-A split
//!    the decay window around the hammer phase);
//! 2. assemble candidate groups matching the requested
//!    [`RowGroupLayout`];
//! 3. if too few candidates, increase `T` and start over;
//! 4. validate every row of every candidate group `consistency_checks`
//!    times (the paper uses 1000) — VRT rows flunk;
//! 5. return the validated groups.

use dram_sim::{Bank, DataPattern, Nanos, PhysRow, RowAddr};
use softmc::MemoryController;

use crate::error::UtrrError;
use crate::layout::RowGroupLayout;

/// Profiling configuration (the "Profiling Config" box of Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoutConfig {
    /// Bank to profile.
    pub bank: Bank,
    /// Physical row range `[start, end)` to search.
    pub row_start: u32,
    /// End of the physical row range (exclusive).
    pub row_end: u32,
    /// Requested group layout.
    pub layout: RowGroupLayout,
    /// Number of validated groups to find.
    pub group_count: usize,
    /// Initial retention interval `T` (paper: e.g. 100 ms).
    pub initial_retention: Nanos,
    /// `T` increment per outer iteration (paper: e.g. 50 ms).
    pub retention_step: Nanos,
    /// Give up once `T` exceeds this.
    pub max_retention: Nanos,
    /// Validation repetitions per row (paper: 1000).
    pub consistency_checks: u32,
    /// Data pattern used for profiling; TRR-A must reuse it.
    pub pattern: DataPattern,
}

impl ScoutConfig {
    /// A reasonable default configuration over the first `row_end`
    /// physical rows of a bank.
    pub fn new(bank: Bank, row_end: u32, layout: RowGroupLayout, group_count: usize) -> Self {
        ScoutConfig {
            bank,
            row_start: 0,
            row_end,
            layout,
            group_count,
            initial_retention: Nanos::from_ms(100),
            retention_step: Nanos::from_ms(50),
            max_retention: Nanos::from_ms(6_000),
            consistency_checks: 100,
            pattern: DataPattern::Ones,
        }
    }
}

/// One retention-profiled row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfiledRow {
    /// Logical address (what the controller issues).
    pub row: RowAddr,
    /// Physical position (what adjacency is computed in).
    pub phys: PhysRow,
}

/// A validated row group: profiled rows plus the aggressor positions of
/// the layout, all sharing the retention bucket `retention`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfiledRowGroup {
    /// The retention-profiled rows, in layout order.
    pub rows: Vec<ProfiledRow>,
    /// Logical addresses of the layout's aggressor positions.
    pub aggressors: Vec<RowAddr>,
    /// The retention bucket: every row holds at `retention / 2` and
    /// fails at `retention` when unrefreshed.
    pub retention: Nanos,
    /// Physical position of the group base (layout offset 0).
    pub base: PhysRow,
    /// The pattern the rows were profiled with.
    pub pattern: DataPattern,
}

impl ProfiledRowGroup {
    /// Logical addresses of the profiled rows.
    pub fn victim_rows(&self) -> Vec<RowAddr> {
        self.rows.iter().map(|r| r.row).collect()
    }
}

/// Row Scout: see the [module docs](self).
///
/// # Example
///
/// ```no_run
/// use dram_sim::{Bank, Module, ModuleConfig};
/// use softmc::MemoryController;
/// use utrr_core::{RowScout, ScoutConfig, RowGroupLayout};
///
/// # fn main() -> Result<(), utrr_core::UtrrError> {
/// let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 1));
/// let config = ScoutConfig::new(
///     Bank::new(0), 1024, RowGroupLayout::single_aggressor_pair(), 2);
/// let groups = RowScout::new(config).scan(&mut mc)?;
/// assert_eq!(groups.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RowScout {
    config: ScoutConfig,
}

impl RowScout {
    /// Creates a scout for the given profiling configuration.
    pub fn new(config: ScoutConfig) -> Self {
        RowScout { config }
    }

    /// The profiling configuration.
    pub fn config(&self) -> &ScoutConfig {
        &self.config
    }

    /// Runs the Fig. 6 loop and returns `group_count` validated groups.
    ///
    /// The whole scan runs under a `utrr.rowscout.scan` span, with one
    /// `utrr.rowscout.pass` child span per retention interval tried; the
    /// `utrr.rowscout.groups_found` counter records validated groups.
    ///
    /// # Errors
    ///
    /// [`UtrrError::NotEnoughRowGroups`] if the retention ceiling is
    /// reached first; device errors are propagated.
    pub fn scan(&self, mc: &mut MemoryController) -> Result<Vec<ProfiledRowGroup>, UtrrError> {
        let registry = std::sync::Arc::clone(mc.registry());
        let span = obs::span!(
            registry,
            "utrr.rowscout.scan",
            mc.now().as_ns(),
            rows = (self.config.row_end - self.config.row_start) as u64,
            groups_wanted = self.config.group_count as u64
        );
        let result = self.scan_inner(mc);
        if let Ok(groups) = &result {
            registry.counter("utrr.rowscout.groups_found").add(groups.len() as u64);
        }
        span.finish(mc.now().as_ns());
        result
    }

    fn scan_inner(&self, mc: &mut MemoryController) -> Result<Vec<ProfiledRowGroup>, UtrrError> {
        let cfg = &self.config;
        let mut retention = cfg.initial_retention;
        let mut best_found = 0usize;
        while retention <= cfg.max_retention {
            let registry = std::sync::Arc::clone(mc.registry());
            let pass = obs::span!(
                registry,
                "utrr.rowscout.pass",
                mc.now().as_ns(),
                retention_ms = retention.as_ns() / 1_000_000
            );
            let groups = self.scan_at(mc, retention);
            pass.finish(mc.now().as_ns());
            let groups = groups?;
            best_found = best_found.max(groups.len());
            if groups.len() >= cfg.group_count {
                return Ok(groups.into_iter().take(cfg.group_count).collect());
            }
            retention += cfg.retention_step;
        }
        Err(UtrrError::NotEnoughRowGroups {
            found: best_found,
            needed: cfg.group_count,
            max_retention: cfg.max_retention,
        })
    }

    /// One outer iteration at a fixed `T`: bucket scan, candidate
    /// assembly, validation.
    fn scan_at(
        &self,
        mc: &mut MemoryController,
        retention: Nanos,
    ) -> Result<Vec<ProfiledRowGroup>, UtrrError> {
        let cfg = &self.config;
        // Rows failing within T…
        let fail_at_t = self.failing_rows(mc, retention)?;
        // …minus rows that fail too early (before they could survive the
        // first half-window of a TRR-A experiment; footnote 4).
        let fail_early = self.failing_rows(mc, retention * 55 / 100)?;
        let bucket: Vec<bool> =
            fail_at_t.iter().zip(&fail_early).map(|(&late, &early)| late && !early).collect();

        let mut groups = Vec::new();
        let mut base = cfg.row_start;
        let span = cfg.layout.span();
        while base + span <= cfg.row_end && groups.len() < cfg.group_count {
            let in_bucket = cfg
                .layout
                .profiled()
                .iter()
                .all(|&off| bucket[(base + off - cfg.row_start) as usize]);
            if in_bucket {
                let group = self.assemble_group(mc, base, retention);
                if self.validate_group(mc, &group)? {
                    // Skip past this group (plus a guard row) so groups
                    // never overlap.
                    base += span + 1;
                    groups.push(group);
                    continue;
                }
            }
            base += 1;
        }
        Ok(groups)
    }

    /// Writes the pattern to the whole range, decays it for `wait`, and
    /// returns per-row failure flags.
    fn failing_rows(&self, mc: &mut MemoryController, wait: Nanos) -> Result<Vec<bool>, UtrrError> {
        let cfg = &self.config;
        for phys in cfg.row_start..cfg.row_end {
            let row = mc.module().logical_of(PhysRow::new(phys));
            mc.write_row(cfg.bank, row, cfg.pattern.clone())?;
        }
        mc.wait_no_refresh(wait);
        let mut failed = Vec::with_capacity((cfg.row_end - cfg.row_start) as usize);
        for phys in cfg.row_start..cfg.row_end {
            let row = mc.module().logical_of(PhysRow::new(phys));
            failed.push(!mc.read_row(cfg.bank, row)?.is_clean());
        }
        Ok(failed)
    }

    fn assemble_group(
        &self,
        mc: &MemoryController,
        base: u32,
        retention: Nanos,
    ) -> ProfiledRowGroup {
        let cfg = &self.config;
        let rows = cfg
            .layout
            .profiled()
            .iter()
            .map(|&off| {
                let phys = PhysRow::new(base + off);
                ProfiledRow { row: mc.module().logical_of(phys), phys }
            })
            .collect();
        let aggressors = cfg
            .layout
            .aggressors()
            .iter()
            .map(|&off| mc.module().logical_of(PhysRow::new(base + off)))
            .collect();
        ProfiledRowGroup {
            rows,
            aggressors,
            retention,
            base: PhysRow::new(base),
            pattern: cfg.pattern.clone(),
        }
    }

    /// Paper: "RS validates the retention time of a row one thousand
    /// times to ensure its consistency over time." Each check verifies
    /// both sides of the bucket: the row must fail after `T` and hold
    /// after `0.55 T`.
    fn validate_group(
        &self,
        mc: &mut MemoryController,
        group: &ProfiledRowGroup,
    ) -> Result<bool, UtrrError> {
        let cfg = &self.config;
        for _ in 0..cfg.consistency_checks {
            for profiled in &group.rows {
                mc.write_row(cfg.bank, profiled.row, cfg.pattern.clone())?;
            }
            mc.wait_no_refresh(group.retention);
            for profiled in &group.rows {
                if mc.read_row(cfg.bank, profiled.row)?.is_clean() {
                    return Ok(false); // held longer than profiled: VRT
                }
            }
            for profiled in &group.rows {
                mc.write_row(cfg.bank, profiled.row, cfg.pattern.clone())?;
            }
            mc.wait_no_refresh(group.retention * 55 / 100);
            for profiled in &group.rows {
                if !mc.read_row(cfg.bank, profiled.row)?.is_clean() {
                    return Ok(false); // failed too soon: VRT or margin
                }
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Module, ModuleConfig, RowMapping};

    fn controller(seed: u64) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::small_test(), seed))
    }

    fn scout(layout: &str, count: usize) -> RowScout {
        let layout: RowGroupLayout = layout.parse().unwrap();
        RowScout::new(ScoutConfig::new(Bank::new(0), 1024, layout, count))
    }

    #[test]
    fn finds_single_aggressor_pairs() {
        let mut mc = controller(11);
        let groups = scout("RAR", 3).scan(&mut mc).unwrap();
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.rows.len(), 2);
            assert_eq!(g.aggressors.len(), 1);
            // Layout geometry: profiled rows two apart, aggressor between.
            assert_eq!(g.rows[1].phys.index() - g.rows[0].phys.index(), 2);
        }
    }

    #[test]
    fn groups_do_not_overlap() {
        let mut mc = controller(11);
        let groups = scout("RAR", 4).scan(&mut mc).unwrap();
        for w in groups.windows(2) {
            assert!(w[1].base.index() >= w[0].base.index() + 4);
        }
    }

    #[test]
    fn profiled_rows_fail_at_t_and_hold_at_half_t() {
        let mut mc = controller(13);
        let groups = scout("RAR", 2).scan(&mut mc).unwrap();
        for g in &groups {
            for p in &g.rows {
                mc.write_row(g.pattern_bank(), p.row, g.pattern.clone()).unwrap();
                mc.wait_no_refresh(g.retention);
                assert!(!mc.read_row(g.pattern_bank(), p.row).unwrap().is_clean());
                mc.write_row(g.pattern_bank(), p.row, g.pattern.clone()).unwrap();
                mc.wait_no_refresh(g.retention / 2);
                assert!(mc.read_row(g.pattern_bank(), p.row).unwrap().is_clean());
            }
        }
    }

    #[test]
    fn validated_rows_have_stable_binding_retention() {
        // What validation must guarantee is not "no VRT cell anywhere"
        // but that the row's observable behaviour is state-independent:
        // a *stable* cell fails inside the bucket, and no cell (in any
        // VRT state) can fail before the early-check margin.
        let mut mc = controller(17);
        let groups = scout("RAR", 3).scan(&mut mc).unwrap();
        for g in &groups {
            let t = g.retention;
            for p in &g.rows {
                let view = mc.module_mut().inspect_row(Bank::new(0), p.row);
                let stable_binds = view.weak_cells.iter().any(|&(_, r, vrt)| !vrt && r < t);
                assert!(stable_binds, "a non-VRT cell must guarantee failure at T");
                let early_margin = t * 55 / 100;
                let none_early = view.weak_cells.iter().all(|&(_, r, _)| r > early_margin);
                assert!(none_early, "no cell may fail before the early margin");
            }
        }
    }

    #[test]
    fn respects_scrambled_mappings() {
        let mut config = ModuleConfig::small_test();
        config.mapping = RowMapping::block_mirror(3);
        let mut mc = MemoryController::new(Module::new(config, 19));
        let groups = scout("RAR", 2).scan(&mut mc).unwrap();
        for g in &groups {
            // Physical geometry must hold even though logical addresses
            // are scrambled.
            assert_eq!(g.rows[1].phys.index() - g.rows[0].phys.index(), 2);
            let phys_of = |r| mc.module().phys_of(r).index();
            assert_eq!(phys_of(g.rows[0].row), g.rows[0].phys.index());
            assert_eq!(phys_of(g.aggressors[0]), g.base.index() + 1);
        }
    }

    #[test]
    fn errors_when_range_cannot_satisfy_request() {
        let mut mc = controller(11);
        let layout: RowGroupLayout = "RARRRRAR".parse().unwrap();
        let mut cfg = ScoutConfig::new(Bank::new(0), 64, layout, 50);
        cfg.max_retention = Nanos::from_ms(400);
        let err = RowScout::new(cfg).scan(&mut mc).unwrap_err();
        assert!(matches!(err, UtrrError::NotEnoughRowGroups { needed: 50, .. }));
    }

    #[test]
    fn larger_probe_layouts_are_findable() {
        let mut mc = controller(23);
        let groups = scout("RRARR", 1).scan(&mut mc).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].rows.len(), 4);
    }

    impl ProfiledRowGroup {
        fn pattern_bank(&self) -> Bank {
            Bank::new(0)
        }
    }
}
