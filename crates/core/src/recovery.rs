//! The adaptive recovery ladder and tiered verdict confidence.
//!
//! PR 3's self-healing layer (voting, bounded retries, quarantine)
//! keeps the pipeline *correct* under the `mild` fault profile. Under
//! `hostile` the static policies run out: vote disagreements become
//! frequent enough that triple-modular redundancy itself mis-votes,
//! whole scan windows are poisoned by VRT bursts, and the injected
//! retention drift outgrows the static 1.05×/0.5× validation margins.
//! This module holds the escalation policy that keeps a hostile run
//! *finishing with useful output*:
//!
//! * **vote widening** — the majority-vote width escalates 3→5→7 when
//!   the per-controller disagreement rate crosses
//!   [`VOTE_WIDEN_NUM`]/[`VOTE_WIDEN_DEN`] over a window of at least
//!   [`VOTE_WINDOW_MIN`] voted reads;
//! * **candidate relocation** — a Row Scout whose window runs dry
//!   relocates to fresh subarray regions via a deterministic seeded
//!   search instead of giving up (see
//!   [`RowScout::scan_recover`](crate::rowscout::RowScout::scan_recover));
//! * **drift re-profiling** — a [`DriftEstimator`] escalates the
//!   retention-validation margins mid-run when repeated margin failures
//!   show the static envelope no longer holds;
//! * **ACT-budget circuit breakers** — every discovery phase carries an
//!   activation budget ([`PhaseBudget`]) and closes with partial
//!   evidence instead of spinning or erroring when it runs out.
//!
//! Every stage is gated on
//! [`MemoryController::fault_severity`]` >= `[`LADDER_SEVERITY`], so
//! the `none` and `mild` profiles keep their exact command streams.
//! Ladder *decisions* read only the per-controller
//! [`softmc::RecoveryLadder`] state (deterministic at any thread
//! count); the totals are mirrored into registry counters for
//! reporting, where concurrent adds commute.
//!
//! What the pipeline still knows after degrading is expressed as a
//! [`VerdictTier`] carried alongside every profile, record, and fleet
//! summary.

use dram_sim::{Bank, RowAddr};
use softmc::MemoryController;

/// Counter: majority-vote width escalations (3→5, 5→7).
pub const CTR_VOTE_WIDENINGS: &str = "utrr.recovery.vote_widenings";
/// Counter: Row Scout windows relocated to fresh subarray regions.
pub const CTR_RELOCATIONS: &str = "utrr.recovery.relocations";
/// Counter: mid-run retention-drift margin re-profiles.
pub const CTR_REPROFILES: &str = "utrr.recovery.reprofiles";
/// Counter: phases closed early by an ACT-budget circuit breaker.
pub const CTR_BUDGET_TRIPS: &str = "utrr.recovery.budget_trips";

/// Minimum [`MemoryController::fault_severity`] that unlocks the
/// escalating recovery ladder.
pub const LADDER_SEVERITY: u8 = 2;

/// Disagreement-rate numerator/denominator that triggers vote widening:
/// more than 1 disagreement per 8 voted reads.
pub const VOTE_WIDEN_NUM: u64 = 1;
/// See [`VOTE_WIDEN_NUM`].
pub const VOTE_WIDEN_DEN: u64 = 8;
/// Voted reads required in the rate window before widening can trigger.
pub const VOTE_WINDOW_MIN: u64 = 24;
/// The widest majority vote the ladder escalates to.
pub const VOTE_WIDTH_MAX: u8 = 7;

/// Whether the escalating ladder is unlocked on this controller.
pub fn ladder_active(mc: &MemoryController) -> bool {
    mc.fault_severity() >= LADDER_SEVERITY
}

/// How confident the pipeline is in a result it produced.
///
/// The tier is about *process*, not about matching any ground truth: a
/// profile whose phases all completed within budget — retries, votes,
/// and quarantines included — is `Confirmed` even if its conclusions
/// are wrong. A phase that closed early or was skipped degrades the
/// tier and records why; a pipeline with no usable profile at all is
/// `Inconclusive`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictTier {
    /// Every phase completed within its budget with verified evidence.
    Confirmed,
    /// The pipeline completed, but at least one phase closed early or
    /// ran on partial evidence; `reasons` lists the degradations in the
    /// order they occurred (deduplicated).
    Degraded {
        /// Stable lower-kebab-case degradation labels (e.g.
        /// `scout-shortfall`, `schedule`, `act-budget`, `hc-cap`).
        reasons: Vec<String>,
    },
    /// No usable profile: the recovery ladder was exhausted.
    Inconclusive,
}

impl VerdictTier {
    /// The stable lower-case label (`confirmed`, `degraded`,
    /// `inconclusive`) used in fleet records and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            VerdictTier::Confirmed => "confirmed",
            VerdictTier::Degraded { .. } => "degraded",
            VerdictTier::Inconclusive => "inconclusive",
        }
    }

    /// Numeric code for trace-event fields (0/1/2 in tier order).
    pub fn code(&self) -> u64 {
        match self {
            VerdictTier::Confirmed => 0,
            VerdictTier::Degraded { .. } => 1,
            VerdictTier::Inconclusive => 2,
        }
    }

    /// The degradation reasons, `+`-joined (empty unless `Degraded`).
    pub fn reasons_string(&self) -> String {
        match self {
            VerdictTier::Degraded { reasons } => reasons.join("+"),
            _ => String::new(),
        }
    }

    /// Whether the tier is [`VerdictTier::Confirmed`].
    pub fn is_confirmed(&self) -> bool {
        matches!(self, VerdictTier::Confirmed)
    }

    /// Degrades the tier with `reason` (idempotent per reason; an
    /// `Inconclusive` tier stays inconclusive).
    pub fn degrade(&mut self, reason: &str) {
        match self {
            VerdictTier::Confirmed => {
                *self = VerdictTier::Degraded { reasons: vec![reason.to_string()] };
            }
            VerdictTier::Degraded { reasons } => {
                if !reasons.iter().any(|r| r == reason) {
                    reasons.push(reason.to_string());
                }
            }
            VerdictTier::Inconclusive => {}
        }
    }

    /// Folds another tier in, keeping the worse of the two and the
    /// union of degradation reasons.
    pub fn merge(&mut self, other: &VerdictTier) {
        match other {
            VerdictTier::Confirmed => {}
            VerdictTier::Degraded { reasons } => {
                for reason in reasons {
                    self.degrade(reason);
                }
            }
            VerdictTier::Inconclusive => *self = VerdictTier::Inconclusive,
        }
    }

    /// Parses a `(label, reasons_string)` pair back (the fleet-record
    /// wire form). Unknown labels read as `Confirmed`, matching the
    /// pre-tier streams where the field is absent.
    pub fn from_wire(label: &str, reasons: &str) -> VerdictTier {
        match label {
            "inconclusive" => VerdictTier::Inconclusive,
            "degraded" => VerdictTier::Degraded {
                reasons: reasons.split('+').filter(|r| !r.is_empty()).map(str::to_string).collect(),
            },
            _ => VerdictTier::Confirmed,
        }
    }
}

/// Records one ladder event: bumps `counter`, adds it to the
/// controller's [`softmc::RecoveryLadder`] via `bump`, and emits a
/// `recovery` trace event with `detail` so the flight recorder carries
/// the provenance.
pub fn ladder_event(
    mc: &mut MemoryController,
    counter: &'static str,
    detail: &str,
    bank: Bank,
    row: Option<RowAddr>,
) {
    let registry = std::sync::Arc::clone(mc.registry());
    registry.counter(counter).inc();
    let phys = row.map(|r| mc.module().phys_of(r).index());
    registry.trace(
        obs::TraceKind::Recovery,
        mc.now().as_ns(),
        u32::from(bank.index()),
        phys,
        &[],
        detail,
    );
}

/// The majority-vote width currently in effect on this controller
/// (always odd; 3 until the ladder widens it).
pub fn vote_width(mc: &MemoryController) -> u8 {
    match mc.recovery().vote_width {
        0 => 3,
        w => w,
    }
}

/// Records one voted read's outcome and escalates the vote width when
/// the disagreement rate over the current window crosses the widening
/// threshold. Only called with the ladder active.
pub fn note_vote(mc: &mut MemoryController, bank: Bank, row: RowAddr, disagreed: bool) {
    mc.recovery_mut().record_vote(disagreed);
    let ladder = *mc.recovery();
    let width = vote_width(mc);
    if width >= VOTE_WIDTH_MAX
        || ladder.voted_reads < VOTE_WINDOW_MIN
        || ladder.disagreements * VOTE_WIDEN_DEN <= ladder.voted_reads * VOTE_WIDEN_NUM
    {
        return;
    }
    let ladder = mc.recovery_mut();
    ladder.vote_width = width + 2;
    ladder.vote_widenings += 1;
    ladder.reset_vote_window();
    ladder_event(mc, CTR_VOTE_WIDENINGS, "vote_widen", bank, Some(row));
}

/// An ACT-budget circuit breaker for one pipeline phase.
///
/// The budget is charged against the device's activation counter, so it
/// bounds real command traffic, not wall-clock. A tripped budget
/// latches (like the Row Scout's scan budget): once exhausted, the
/// phase must close with whatever partial evidence it has.
#[derive(Debug, Clone, Copy)]
pub struct PhaseBudget {
    acts_start: u64,
    max_acts: Option<u64>,
    tripped: bool,
}

impl PhaseBudget {
    /// A breaker allowing `max_acts` activations from now (`None` =
    /// unlimited, the fault-free shape).
    pub fn begin(mc: &MemoryController, max_acts: Option<u64>) -> PhaseBudget {
        PhaseBudget { acts_start: mc.module().stats().activations, max_acts, tripped: false }
    }

    /// Whether the budget is exhausted, latching and recording the trip
    /// (counter + trace event) the first time it is.
    pub fn exhausted(&mut self, mc: &mut MemoryController, bank: Bank) -> bool {
        if self.tripped {
            return true;
        }
        let Some(max) = self.max_acts else { return false };
        if mc.module().stats().activations - self.acts_start >= max {
            self.tripped = true;
            mc.recovery_mut().budget_trips += 1;
            ladder_event(mc, CTR_BUDGET_TRIPS, "budget_trip", bank, None);
        }
        self.tripped
    }

    /// Whether the breaker has tripped.
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

/// Margin-failure count at one estimator level before escalating.
const REPROFILE_AFTER: u32 = 3;

/// Mid-run retention-drift re-profiler.
///
/// The Row Scout validates candidate groups against static margins: a
/// row must fail within 1.05× its retention bucket and hold at 0.5×.
/// Under hostile drift (±8%) those margins reject rows that are in
/// fact usable — the decay point wanders past the margins between
/// measurements. The estimator watches margin-type failures
/// (`retention-drift` quarantines) and, after [`REPROFILE_AFTER`] of
/// them at the current level, re-profiles: the decay margin widens and
/// the hold margin relaxes one step, re-anchoring the validation
/// envelope to the drift actually observed mid-run.
///
/// | level | fail-by margin | hold-at margin |
/// |-------|----------------|----------------|
/// | 0     | 1.05× (21/20)  | 0.50× (1/2)    |
/// | 1     | 1.10× (11/10)  | 0.40× (2/5)    |
/// | 2     | 1.15× (23/20)  | 0.33× (1/3)    |
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftEstimator {
    level: u8,
    failures_at_level: u32,
}

impl DriftEstimator {
    /// The current escalation level (0..=2).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The fail-by margin as a `(num, den)` multiplier on the retention
    /// bucket: the row must decay within `retention * num / den`.
    pub fn wait_margin(&self) -> (u64, u64) {
        match self.level {
            0 => (21, 20),
            1 => (11, 10),
            _ => (23, 20),
        }
    }

    /// The hold-at margin as a `(num, den)` multiplier on the retention
    /// bucket: the row must stay clean at `retention * num / den`.
    pub fn hold_margin(&self) -> (u64, u64) {
        match self.level {
            0 => (1, 2),
            1 => (2, 5),
            _ => (1, 3),
        }
    }

    /// Records a margin-type validation failure; escalates (and
    /// records the re-profile) when the level's failure budget is
    /// spent. Returns whether an escalation happened.
    pub fn note_margin_failure(
        &mut self,
        mc: &mut MemoryController,
        bank: Bank,
        row: RowAddr,
    ) -> bool {
        if self.level >= 2 {
            return false;
        }
        self.failures_at_level += 1;
        if self.failures_at_level < REPROFILE_AFTER {
            return false;
        }
        self.level += 1;
        self.failures_at_level = 0;
        mc.recovery_mut().reprofiles += 1;
        ladder_event(mc, CTR_REPROFILES, "reprofile", bank, Some(row));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Module, ModuleConfig};

    const BANK: Bank = Bank::new(0);

    fn controller() -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::small_test(), 7))
    }

    #[test]
    fn tier_degrades_and_merges_in_order() {
        let mut tier = VerdictTier::Confirmed;
        assert!(tier.is_confirmed());
        assert_eq!(tier.label(), "confirmed");
        tier.degrade("schedule");
        tier.degrade("act-budget");
        tier.degrade("schedule");
        assert_eq!(tier.reasons_string(), "schedule+act-budget");
        assert_eq!(tier.code(), 1);

        let mut other = VerdictTier::Confirmed;
        other.merge(&tier);
        assert_eq!(other, tier);
        other.merge(&VerdictTier::Inconclusive);
        assert_eq!(other, VerdictTier::Inconclusive);
        other.degrade("late");
        assert_eq!(other, VerdictTier::Inconclusive, "inconclusive is terminal");
    }

    #[test]
    fn tier_wire_form_round_trips() {
        for tier in [
            VerdictTier::Confirmed,
            VerdictTier::Degraded { reasons: vec!["scout-shortfall".into(), "hc-cap".into()] },
            VerdictTier::Inconclusive,
        ] {
            let back = VerdictTier::from_wire(tier.label(), &tier.reasons_string());
            assert_eq!(back, tier);
        }
        // Pre-tier streams (absent field) read as confirmed.
        assert_eq!(VerdictTier::from_wire("", ""), VerdictTier::Confirmed);
    }

    #[test]
    fn vote_width_widens_on_sustained_disagreement() {
        let mut mc = controller();
        assert_eq!(vote_width(&mc), 3);
        // Below the window minimum nothing happens, whatever the rate.
        for _ in 0..VOTE_WINDOW_MIN - 1 {
            note_vote(&mut mc, BANK, RowAddr::new(1), true);
        }
        assert_eq!(vote_width(&mc), 3);
        note_vote(&mut mc, BANK, RowAddr::new(1), true);
        assert_eq!(vote_width(&mc), 5, "sustained disagreement widens the vote");
        assert_eq!(mc.recovery().vote_widenings, 1);
        assert_eq!(mc.recovery().voted_reads, 0, "window resets after widening");
        // Escalate once more, then saturate at 7.
        for _ in 0..VOTE_WINDOW_MIN + 1 {
            note_vote(&mut mc, BANK, RowAddr::new(1), true);
        }
        assert_eq!(vote_width(&mc), 7);
        for _ in 0..VOTE_WINDOW_MIN + 1 {
            note_vote(&mut mc, BANK, RowAddr::new(1), true);
        }
        assert_eq!(vote_width(&mc), 7, "the ladder saturates at {VOTE_WIDTH_MAX}");
        assert_eq!(mc.registry().counter(CTR_VOTE_WIDENINGS).get(), 2);
    }

    #[test]
    fn low_disagreement_rates_never_widen() {
        let mut mc = controller();
        for i in 0..400u32 {
            // 1 disagreement per 10 voted reads (at the end of each run
            // of 10, so no prefix of the window ever exceeds the 1/8
            // threshold either).
            note_vote(&mut mc, BANK, RowAddr::new(1), i % 10 == 9);
        }
        assert_eq!(vote_width(&mc), 3);
        assert_eq!(mc.recovery().vote_widenings, 0);
    }

    #[test]
    fn phase_budget_trips_once_and_latches() {
        let mut mc = controller();
        let mut unlimited = PhaseBudget::begin(&mc, None);
        assert!(!unlimited.exhausted(&mut mc, BANK));

        let mut budget = PhaseBudget::begin(&mc, Some(10));
        assert!(!budget.exhausted(&mut mc, BANK));
        mc.module_mut().hammer(BANK, RowAddr::new(3), 12).unwrap();
        assert!(budget.exhausted(&mut mc, BANK));
        assert!(budget.exhausted(&mut mc, BANK), "latched");
        assert_eq!(mc.recovery().budget_trips, 1, "recorded once, not per poll");
        assert_eq!(mc.registry().counter(CTR_BUDGET_TRIPS).get(), 1);
    }

    #[test]
    fn drift_estimator_escalates_after_repeated_margin_failures() {
        let mut mc = controller();
        let mut est = DriftEstimator::default();
        assert_eq!(est.wait_margin(), (21, 20));
        assert_eq!(est.hold_margin(), (1, 2));
        let mut escalations = 0;
        for _ in 0..20 {
            if est.note_margin_failure(&mut mc, BANK, RowAddr::new(9)) {
                escalations += 1;
            }
        }
        assert_eq!(escalations, 2, "two levels, then saturation");
        assert_eq!(est.level(), 2);
        assert_eq!(est.wait_margin(), (23, 20));
        assert_eq!(est.hold_margin(), (1, 3));
        assert_eq!(mc.recovery().reprofiles, 2);
        assert_eq!(mc.registry().counter(CTR_REPROFILES).get(), 2);
    }
}
