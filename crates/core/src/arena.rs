//! Reusable scratch buffers for the experiment inner loops.
//!
//! Row Scout and the TRR Analyzer run the same small passes millions of
//! times per module sweep — bucket scans, candidate filters, failure
//! signatures — and each pass needs a few short-lived vectors. Allocating
//! them fresh every pass puts the allocator on the hot path; this module
//! keeps a thread-local pool of retired buffers so steady-state passes
//! reuse capacity instead of allocating.
//!
//! The pool is deliberately minimal: callers `take_*` a cleared vector
//! (capacity retained from earlier use), fill it, and `recycle_*` it when
//! done. A buffer that escapes (error path, early return) is simply
//! dropped — correctness never depends on recycling, only steady-state
//! allocation behaviour does. Pools are per-thread, so the parallel sweep
//! executor's workers never contend.

use std::cell::{Cell, RefCell};

/// Upper bound on pooled buffers of each type, so a burst can't pin
/// unbounded memory: excess recycles are dropped.
const POOL_CAP: usize = 32;

/// Allocation-reuse counters of one thread's pool (monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out.
    pub takes: u64,
    /// Takes served from the pool (no allocation).
    pub reuses: u64,
    /// Buffers returned to the pool.
    pub recycles: u64,
}

/// A pool of cleared, capacity-retaining scratch vectors.
#[derive(Debug, Default)]
pub struct ScratchArena {
    u32s: RefCell<Vec<Vec<u32>>>,
    bools: RefCell<Vec<Vec<bool>>>,
    takes: Cell<u64>,
    reuses: Cell<u64>,
    recycles: Cell<u64>,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// An empty `Vec<u32>`, reusing pooled capacity when available.
    pub fn take_u32(&self) -> Vec<u32> {
        self.takes.set(self.takes.get() + 1);
        match self.u32s.borrow_mut().pop() {
            Some(v) => {
                self.reuses.set(self.reuses.get() + 1);
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a `Vec<u32>` to the pool for later reuse.
    pub fn recycle_u32(&self, mut v: Vec<u32>) {
        let mut pool = self.u32s.borrow_mut();
        if pool.len() < POOL_CAP {
            v.clear();
            self.recycles.set(self.recycles.get() + 1);
            pool.push(v);
        }
    }

    /// An empty `Vec<bool>`, reusing pooled capacity when available.
    pub fn take_bools(&self) -> Vec<bool> {
        self.takes.set(self.takes.get() + 1);
        match self.bools.borrow_mut().pop() {
            Some(v) => {
                self.reuses.set(self.reuses.get() + 1);
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a `Vec<bool>` to the pool for later reuse.
    pub fn recycle_bools(&self, mut v: Vec<bool>) {
        let mut pool = self.bools.borrow_mut();
        if pool.len() < POOL_CAP {
            v.clear();
            self.recycles.set(self.recycles.get() + 1);
            pool.push(v);
        }
    }

    /// A snapshot of this arena's reuse counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            takes: self.takes.get(),
            reuses: self.reuses.get(),
            recycles: self.recycles.get(),
        }
    }
}

thread_local! {
    static SCRATCH: ScratchArena = ScratchArena::new();
}

/// Runs `f` with the calling thread's scratch arena.
pub fn with_scratch<R>(f: impl FnOnce(&ScratchArena) -> R) -> R {
    SCRATCH.with(f)
}

/// [`ScratchArena::take_u32`] on the thread-local arena.
pub fn take_u32() -> Vec<u32> {
    with_scratch(ScratchArena::take_u32)
}

/// [`ScratchArena::recycle_u32`] on the thread-local arena.
pub fn recycle_u32(v: Vec<u32>) {
    with_scratch(|a| a.recycle_u32(v));
}

/// [`ScratchArena::take_bools`] on the thread-local arena.
pub fn take_bools() -> Vec<bool> {
    with_scratch(ScratchArena::take_bools)
}

/// [`ScratchArena::recycle_bools`] on the thread-local arena.
pub fn recycle_bools(v: Vec<bool>) {
    with_scratch(|a| a.recycle_bools(v));
}

/// [`ScratchArena::stats`] of the thread-local arena.
pub fn thread_stats() -> ArenaStats {
    with_scratch(ScratchArena::stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        let arena = ScratchArena::new();
        let mut v = arena.take_u32();
        v.extend(0..100);
        let cap = v.capacity();
        arena.recycle_u32(v);
        let v = arena.take_u32();
        assert!(v.is_empty(), "recycled buffers come back cleared");
        assert_eq!(v.capacity(), cap, "capacity survives the round trip");
        let s = arena.stats();
        assert_eq!((s.takes, s.reuses, s.recycles), (2, 1, 1));
    }

    #[test]
    fn pool_is_bounded() {
        let arena = ScratchArena::new();
        for _ in 0..2 * POOL_CAP {
            arena.recycle_bools(Vec::with_capacity(8));
        }
        assert_eq!(arena.stats().recycles as usize, POOL_CAP);
    }

    #[test]
    fn fresh_takes_allocate_nothing_pooled() {
        let arena = ScratchArena::new();
        let a = arena.take_bools();
        let b = arena.take_bools();
        assert_eq!(a.capacity(), 0);
        assert_eq!(b.capacity(), 0);
        assert_eq!(arena.stats().reuses, 0);
    }

    #[test]
    fn thread_local_arena_is_shared_within_a_thread() {
        let before = thread_stats();
        let mut v = take_bools();
        v.push(true);
        recycle_bools(v);
        let after = thread_stats();
        assert_eq!(after.takes, before.takes + 1);
        assert_eq!(after.recycles, before.recycles + 1);
    }
}
