//! Row-group layout notation.
//!
//! §4.1 of the paper describes row groups with a notation "such as
//! `R-R-R`, where 'R' indicates a retention-profiled row and '-'
//! indicates a distance of one DRAM row". We extend the notation with
//! `A`, marking the gap position where the experiment will place an
//! aggressor row (the paper's `R-R` group, for instance, hammers the row
//! *between* the two profiled rows — our `RAR`).

use std::fmt;
use std::str::FromStr;

/// A parsed row-group layout: which offsets (in *physical* row space,
/// relative to the group base) are retention-profiled and which hold
/// aggressors.
///
/// # Example
///
/// ```
/// use utrr_core::RowGroupLayout;
///
/// let layout: RowGroupLayout = "RRARR".parse().unwrap();
/// assert_eq!(layout.profiled(), &[0, 1, 3, 4]);
/// assert_eq!(layout.aggressors(), &[2]);
/// assert_eq!(layout.span(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowGroupLayout {
    profiled: Vec<u32>,
    aggressors: Vec<u32>,
    span: u32,
}

impl RowGroupLayout {
    /// Builds a layout from explicit offsets.
    ///
    /// # Panics
    ///
    /// Panics if a profiled offset collides with an aggressor offset.
    pub fn new(profiled: Vec<u32>, aggressors: Vec<u32>, span: u32) -> Self {
        for a in &aggressors {
            assert!(!profiled.contains(a), "offset {a} is both profiled and aggressor");
        }
        RowGroupLayout { profiled, aggressors, span }
    }

    /// The paper's `R-R` group with the aggressor in the gap: `RAR`.
    pub fn single_aggressor_pair() -> Self {
        "RAR".parse().expect("static layout parses")
    }

    /// Profiled rows at distance 1 and 2 on both sides of one aggressor:
    /// `RRARR`, used to count how many neighbours TRR refreshes
    /// (Observation A2 / B2).
    pub fn neighbor_probe() -> Self {
        "RRARR".parse().expect("static layout parses")
    }

    /// A single profiled row immediately below an aggressor: `AR`.
    pub fn adjacent_pair() -> Self {
        "AR".parse().expect("static layout parses")
    }

    /// Offsets of retention-profiled rows relative to the group base.
    pub fn profiled(&self) -> &[u32] {
        &self.profiled
    }

    /// Offsets of aggressor positions relative to the group base.
    pub fn aggressors(&self) -> &[u32] {
        &self.aggressors
    }

    /// Total number of physical rows the group occupies.
    pub fn span(&self) -> u32 {
        self.span
    }
}

impl fmt::Display for RowGroupLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for offset in 0..self.span {
            let c = if self.profiled.contains(&offset) {
                'R'
            } else if self.aggressors.contains(&offset) {
                'A'
            } else {
                '-'
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a layout string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayoutError {
    bad_char: Option<char>,
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bad_char {
            Some(c) => write!(f, "invalid layout character {c:?} (expected R, A, or -)"),
            None => write!(f, "layout must contain at least one profiled row"),
        }
    }
}

impl std::error::Error for ParseLayoutError {}

impl FromStr for RowGroupLayout {
    type Err = ParseLayoutError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut profiled = Vec::new();
        let mut aggressors = Vec::new();
        for (i, c) in s.chars().enumerate() {
            match c {
                'R' => profiled.push(i as u32),
                'A' => aggressors.push(i as u32),
                '-' => {}
                other => return Err(ParseLayoutError { bad_char: Some(other) }),
            }
        }
        if profiled.is_empty() {
            return Err(ParseLayoutError { bad_char: None });
        }
        Ok(RowGroupLayout { profiled, aggressors, span: s.chars().count() as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_notation() {
        let l: RowGroupLayout = "R-R".parse().unwrap();
        assert_eq!(l.profiled(), &[0, 2]);
        assert!(l.aggressors().is_empty());
        assert_eq!(l.span(), 3);
    }

    #[test]
    fn parses_aggressor_positions() {
        let l: RowGroupLayout = "RAR".parse().unwrap();
        assert_eq!(l.profiled(), &[0, 2]);
        assert_eq!(l.aggressors(), &[1]);
    }

    #[test]
    fn parses_rrr_rrr() {
        let l: RowGroupLayout = "RRRARRR".parse().unwrap();
        assert_eq!(l.profiled(), &[0, 1, 2, 4, 5, 6]);
        assert_eq!(l.aggressors(), &[3]);
        assert_eq!(l.span(), 7);
    }

    #[test]
    fn rejects_garbage() {
        let err = "RXR".parse::<RowGroupLayout>().unwrap_err();
        assert!(err.to_string().contains("'X'"));
        assert!("---".parse::<RowGroupLayout>().is_err());
        assert!("A".parse::<RowGroupLayout>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["RAR", "RRARR", "R-R-R", "R--A--R"] {
            let l: RowGroupLayout = s.parse().unwrap();
            assert_eq!(l.to_string(), s);
        }
    }

    #[test]
    #[should_panic(expected = "both profiled and aggressor")]
    fn new_rejects_collisions() {
        let _ = RowGroupLayout::new(vec![0, 1], vec![1], 2);
    }

    #[test]
    fn presets_match_expectations() {
        assert_eq!(RowGroupLayout::single_aggressor_pair().to_string(), "RAR");
        assert_eq!(RowGroupLayout::neighbor_probe().to_string(), "RRARR");
        assert_eq!(RowGroupLayout::adjacent_pair().to_string(), "AR");
    }
}
