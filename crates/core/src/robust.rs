//! Fault-tolerant device-access primitives (the self-healing layer).
//!
//! Transient faults at the device/controller boundary — in-flight read
//! bit flips, stuck reads, dropped or garbled writes (see the `faults`
//! crate) — would corrupt the retention side channel the whole
//! methodology rests on. The helpers here reconcile repeated reads into
//! a consensus readout and verify writes by reading them back.
//!
//! Every extra device command is gated on
//! [`MemoryController::faults_enabled`]: on a fault-free controller the
//! helpers degrade to exactly one read or one write, keeping command
//! traces (and therefore experiment output) bit-identical to a build
//! without this layer.

use dram_sim::{majority3_flips, Bank, DataPattern, RowAddr, RowReadout};
use softmc::MemoryController;

use crate::error::UtrrError;

/// Counter: majority-voted reads performed (fault-aware mode only).
pub const CTR_VOTED_READS: &str = "utrr.robust.voted_reads";
/// Counter: voted reads whose three samples did not all agree.
pub const CTR_READ_DISAGREEMENTS: &str = "utrr.robust.read_disagreements";
/// Counter: verified writes that needed at least one retry.
pub const CTR_WRITE_RETRIES: &str = "utrr.robust.write_retries";
/// Counter: verified writes that never read back clean within the retry
/// budget (the row is left for quarantine logic to handle).
pub const CTR_WRITE_GIVEUPS: &str = "utrr.robust.write_giveups";

/// Verified-write retry budget (first attempt included).
const WRITE_ATTEMPTS: u32 = 4;

/// Reads `row` with majority-vote redundancy when fault injection is
/// active: a bit counts as flipped only when a strict majority of the
/// samples report it. Reading a row activates (and therefore restores)
/// it, so the samples observe the same cell state and differ only
/// through in-flight faults — the majority recovers the true readout
/// unless independent faults collide on the same bit across half the
/// samples.
///
/// The vote width is 3 by default; on a hostile substrate
/// (severity ≥ 2) the recovery ladder widens it adaptively to 5 and 7
/// when the running disagreement rate shows triple redundancy is no
/// longer enough (see [`crate::recovery::note_vote`]).
///
/// With no fault injector installed this is exactly one
/// [`MemoryController::read_row`].
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn read_row_voted(
    mc: &mut MemoryController,
    bank: Bank,
    row: RowAddr,
) -> Result<RowReadout, UtrrError> {
    if !mc.faults_enabled() {
        return Ok(mc.read_row(bank, row)?);
    }
    if crate::recovery::ladder_active(mc) {
        return read_row_voted_wide(mc, bank, row);
    }
    let a = mc.read_row(bank, row)?;
    let b = mc.read_row(bank, row)?;
    let c = mc.read_row(bank, row)?;
    let registry = std::sync::Arc::clone(mc.registry());
    registry.counter(CTR_VOTED_READS).inc();
    if a.flipped_bits() == b.flipped_bits() && b.flipped_bits() == c.flipped_bits() {
        return Ok(a);
    }
    registry.counter(CTR_READ_DISAGREEMENTS).inc();
    registry.trace(
        obs::TraceKind::Recovery,
        mc.now().as_ns(),
        u32::from(bank.index()),
        Some(mc.module().phys_of(row).index()),
        &[],
        "read_disagreement",
    );
    let majority = majority3_flips(a.flipped_bits(), b.flipped_bits(), c.flipped_bits());
    Ok(a.with_flips(majority))
}

/// The adaptive-width vote of the hostile recovery ladder: N samples
/// (N = current ladder width), a bit is flipped iff a strict majority
/// of the samples report it, and every vote feeds the disagreement-rate
/// window that drives 3→5→7 widening.
fn read_row_voted_wide(
    mc: &mut MemoryController,
    bank: Bank,
    row: RowAddr,
) -> Result<RowReadout, UtrrError> {
    let width = crate::recovery::vote_width(mc);
    let mut samples = Vec::with_capacity(usize::from(width));
    for _ in 0..width {
        samples.push(mc.read_row(bank, row)?);
    }
    let registry = std::sync::Arc::clone(mc.registry());
    registry.counter(CTR_VOTED_READS).inc();
    let unanimous = samples.windows(2).all(|pair| pair[0].flipped_bits() == pair[1].flipped_bits());
    crate::recovery::note_vote(mc, bank, row, !unanimous);
    if unanimous {
        return Ok(samples.swap_remove(0));
    }
    registry.counter(CTR_READ_DISAGREEMENTS).inc();
    registry.trace(
        obs::TraceKind::Recovery,
        mc.now().as_ns(),
        u32::from(bank.index()),
        Some(mc.module().phys_of(row).index()),
        &[("width", u64::from(width))],
        "read_disagreement",
    );
    // Strict-majority merge: count each reported bit across the sorted
    // per-sample flip lists (BTreeMap keeps the merged list ordered).
    let mut counts = std::collections::BTreeMap::new();
    for sample in &samples {
        for &bit in sample.flipped_bits() {
            *counts.entry(bit).or_insert(0u32) += 1;
        }
    }
    let majority: Vec<u32> = counts
        .into_iter()
        .filter(|&(_, n)| u64::from(n) * 2 > u64::from(width))
        .map(|(bit, _)| bit)
        .collect();
    Ok(samples.swap_remove(0).with_flips(majority))
}

/// Writes `pattern` into `row` and, when fault injection is active,
/// reads it back (majority-voted) to confirm the write landed; dropped
/// or garbled writes are retried up to a bounded number of attempts.
///
/// Returns `Ok(true)` when the row verifiably holds the pattern (always
/// the case fault-free, where this is exactly one
/// [`MemoryController::write_row`]) and `Ok(false)` when the retry
/// budget ran out — callers decide whether that quarantines the row.
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn write_row_checked(
    mc: &mut MemoryController,
    bank: Bank,
    row: RowAddr,
    pattern: &DataPattern,
) -> Result<bool, UtrrError> {
    if !mc.faults_enabled() {
        mc.write_row(bank, row, pattern.clone())?;
        return Ok(true);
    }
    let registry = std::sync::Arc::clone(mc.registry());
    for attempt in 0..WRITE_ATTEMPTS {
        mc.write_row(bank, row, pattern.clone())?;
        let back = read_row_voted(mc, bank, row)?;
        if back.pattern() == pattern && back.is_clean() {
            return Ok(true);
        }
        if attempt + 1 < WRITE_ATTEMPTS {
            registry.counter(CTR_WRITE_RETRIES).inc();
            registry.trace(
                obs::TraceKind::Recovery,
                mc.now().as_ns(),
                u32::from(bank.index()),
                Some(mc.module().phys_of(row).index()),
                &[("attempt", u64::from(attempt + 1))],
                "write_retry",
            );
        }
    }
    registry.counter(CTR_WRITE_GIVEUPS).inc();
    registry.trace(
        obs::TraceKind::Recovery,
        mc.now().as_ns(),
        u32::from(bank.index()),
        Some(mc.module().phys_of(row).index()),
        &[("attempts", u64::from(WRITE_ATTEMPTS))],
        "write_giveup",
    );
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Module, ModuleConfig, Nanos};
    use softmc::{FaultInjector, WriteFault};

    const BANK: Bank = Bank::new(0);

    /// Deterministic injector: corrupts every read until `reads_clean_after`
    /// reads have happened, and drops the first `drop_writes` writes.
    #[derive(Debug)]
    struct Scripted {
        flip_reads: u32,
        drop_writes: u32,
        reads: u32,
        writes: u32,
    }

    impl FaultInjector for Scripted {
        fn on_read(&mut self, _bank: Bank, _row: RowAddr, readout: &mut RowReadout, _now: Nanos) {
            self.reads += 1;
            if self.flip_reads > 0 {
                self.flip_reads -= 1;
                // Corrupt a different bit per read: no two samples agree.
                readout.inject_flip(self.reads % readout.row_bits());
            }
        }

        fn on_write(
            &mut self,
            _bank: Bank,
            _row: RowAddr,
            _pattern: &DataPattern,
            _now: Nanos,
        ) -> WriteFault {
            self.writes += 1;
            if self.drop_writes > 0 {
                self.drop_writes -= 1;
                WriteFault::Dropped
            } else {
                WriteFault::None
            }
        }

        fn on_tick(&mut self, _now: Nanos, _module: &mut Module) {}
    }

    fn controller() -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::small_test(), 7))
    }

    #[test]
    fn fault_free_paths_issue_single_commands() {
        let mut mc = controller();
        let row = RowAddr::new(5);
        assert!(write_row_checked(&mut mc, BANK, row, &DataPattern::Ones).unwrap());
        let reads_before = mc.module().stats().row_reads;
        let readout = read_row_voted(&mut mc, BANK, row).unwrap();
        assert!(readout.is_clean());
        assert_eq!(mc.module().stats().row_reads, reads_before + 1);
        assert_eq!(mc.registry().counter(CTR_VOTED_READS).get(), 0);
    }

    #[test]
    fn voted_read_filters_uncorrelated_flips() {
        let mut mc = controller();
        let row = RowAddr::new(5);
        mc.write_row(BANK, row, DataPattern::Ones).unwrap();
        mc.set_fault_injector(Some(Box::new(Scripted {
            flip_reads: u32::MAX,
            drop_writes: 0,
            reads: 0,
            writes: 0,
        })));
        let readout = read_row_voted(&mut mc, BANK, row).unwrap();
        assert!(readout.is_clean(), "one corrupt bit per sample never reaches majority");
        assert_eq!(mc.registry().counter(CTR_READ_DISAGREEMENTS).get(), 1);
    }

    #[test]
    fn checked_write_retries_through_dropped_writes() {
        let mut mc = controller();
        // A dropped re-write is only observable when the stale contents
        // are dirty, so pick a row guaranteed to decay within the wait.
        let row = (0..256u32)
            .map(RowAddr::new)
            .find(|&r| {
                let view = mc.module_mut().inspect_row(BANK, r);
                view.weak_cells.iter().any(|&(_, ret, vrt)| !vrt && ret < Nanos::from_ms(1_500))
            })
            .expect("small_test banks have fast-decaying rows");
        mc.write_row(BANK, row, DataPattern::Zeros).unwrap();
        // Decay the row so a dropped re-write is observable as dirt.
        mc.wait_no_refresh(Nanos::from_ms(2_000));
        mc.set_fault_injector(Some(Box::new(Scripted {
            flip_reads: 0,
            drop_writes: 2,
            reads: 0,
            writes: 0,
        })));
        assert!(write_row_checked(&mut mc, BANK, row, &DataPattern::Zeros).unwrap());
        assert!(mc.registry().counter(CTR_WRITE_RETRIES).get() >= 1);
        mc.set_fault_injector(None);
        assert!(mc.read_row(BANK, row).unwrap().is_clean());
    }
}
