//! Reverse engineering the logical→physical row mapping (§5.3).
//!
//! "Before we run RS, we reverse engineer the logical-to-physical row
//! address mapping of a DRAM chip by disabling refresh and performing
//! double-sided RowHammer. We analyze the rows at which RowHammer bit
//! flips appear, so as to determine the physical adjacency of rows."
//!
//! The probe hammers one logical row with refresh disabled and reads a
//! window of logical rows back: the rows that flipped are the physical
//! neighbours. Distance-1 neighbours flip far more cells than distance-2
//! neighbours, so ranking by flip count separates them. A candidate
//! [`RowMapping`] is accepted when it predicts the observed neighbours
//! for every probe.

use dram_sim::{Bank, DataPattern, PhysRow, RowAddr, RowMapping};
use softmc::MemoryController;

use crate::error::UtrrError;

/// Observed adjacency for one probe row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyObservation {
    /// The hammered logical row.
    pub probe: RowAddr,
    /// Flipped logical rows with their flip counts, sorted by flip count
    /// descending.
    pub flipped: Vec<(RowAddr, usize)>,
}

impl AdjacencyObservation {
    /// The logical rows most disturbed by the probe — the physical
    /// distance-1 neighbours (up to two).
    pub fn nearest(&self) -> Vec<RowAddr> {
        self.flipped.iter().take(2).map(|&(r, _)| r).collect()
    }
}

/// Hammers `probe` with refresh disabled and reports which logical rows
/// in `±window` flipped (§5.3's first method).
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn probe_adjacency(
    mc: &mut MemoryController,
    bank: Bank,
    probe: RowAddr,
    window: u32,
    hammers: u64,
) -> Result<AdjacencyObservation, UtrrError> {
    let rows = mc.module().geometry().rows_per_bank;
    let lo = probe.index().saturating_sub(window);
    let hi = (probe.index() + window + 1).min(rows);
    for r in lo..hi {
        if r != probe.index() {
            mc.write_row(bank, RowAddr::new(r), DataPattern::Ones)?;
        }
    }
    mc.module_mut().hammer(bank, probe, hammers)?;
    let mut flipped = Vec::new();
    for r in lo..hi {
        if r == probe.index() {
            continue;
        }
        let readout = mc.read_row(bank, RowAddr::new(r))?;
        if !readout.is_clean() {
            flipped.push((RowAddr::new(r), readout.flip_count()));
        }
    }
    flipped.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(AdjacencyObservation { probe, flipped })
}

/// Whether a candidate mapping explains an observation: every expected
/// physical ±1 neighbour must have flipped, and every flipped row must
/// map to a physical distance of 1 or 2 from the probe (the blast
/// radius). Requiring containment rather than top-2 equality keeps the
/// check robust against per-row flip-count variation between distance-1
/// and distance-2 neighbours.
pub fn mapping_explains(
    mapping: &RowMapping,
    rows_per_bank: u32,
    observation: &AdjacencyObservation,
) -> bool {
    if observation.flipped.is_empty() {
        return false;
    }
    let phys = mapping.to_phys(observation.probe).index();
    let expected: Vec<RowAddr> = [phys.checked_sub(1), phys.checked_add(1)]
        .into_iter()
        .flatten()
        .filter(|&p| p < rows_per_bank)
        .map(|p| mapping.to_logical(PhysRow::new(p)))
        .collect();
    let flipped_rows: Vec<RowAddr> = observation.flipped.iter().map(|&(r, _)| r).collect();
    expected.iter().all(|e| flipped_rows.contains(e))
        && flipped_rows.iter().all(|&r| {
            let d = mapping.to_phys(r).index().abs_diff(phys);
            (1..=2).contains(&d)
        })
}

/// Tries each candidate mapping against adjacency observations from
/// several probe rows and returns the best-supported one.
///
/// Real rows vary enormously in RowHammer strength, so any probe can
/// come back one-sided or empty; the decision is therefore a vote:
/// the winning candidate must explain strictly more observations than
/// every other candidate and at least two of them. Probes with no flips
/// at all are inconclusive and simply don't vote.
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn discover_mapping(
    mc: &mut MemoryController,
    bank: Bank,
    probes: &[RowAddr],
    candidates: &[RowMapping],
    hammers: u64,
) -> Result<Option<RowMapping>, UtrrError> {
    let rows = mc.module().geometry().rows_per_bank;
    let mut observations = Vec::with_capacity(probes.len());
    for &probe in probes {
        let obs = probe_adjacency(mc, bank, probe, 16, hammers)?;
        if !obs.flipped.is_empty() {
            observations.push(obs);
        }
    }
    let scores: Vec<usize> = candidates
        .iter()
        .map(|c| observations.iter().filter(|o| mapping_explains(c, rows, o)).count())
        .collect();
    let best = scores.iter().copied().max().unwrap_or(0);
    if best < 2 || scores.iter().filter(|&&s| s == best).count() != 1 {
        return Ok(None);
    }
    let Some(winner) = scores.iter().position(|&s| s == best) else {
        return Ok(None);
    };
    Ok(Some(candidates[winner].clone()))
}

/// The default candidate library: the decoder schemes the simulator (and
/// real chips studied by prior work) use.
pub fn candidate_mappings() -> Vec<RowMapping> {
    vec![
        RowMapping::Identity,
        RowMapping::block_mirror(1),
        RowMapping::block_mirror(2),
        RowMapping::block_mirror(3),
        RowMapping::msb_xor(3, 0b110),
        RowMapping::msb_xor(3, 0b010),
        RowMapping::msb_xor(4, 0b0110),
    ]
}

/// Detects the paired-row organization of vendor C's C_TRR1 modules
/// (§6.3 Observation 3): hammering a row disturbs exactly one other row,
/// its pair `R ^ 1`. Probes whose neighbourhood shows no flips at all
/// (too strong a row) are inconclusive and skipped; returns `None` when
/// every probe was inconclusive.
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn detect_paired_rows(
    mc: &mut MemoryController,
    bank: Bank,
    probes: &[RowAddr],
    hammers: u64,
) -> Result<Option<bool>, UtrrError> {
    let mut conclusive = 0u32;
    for &probe in probes {
        let obs = probe_adjacency(mc, bank, probe, 8, hammers)?;
        if obs.flipped.is_empty() {
            continue;
        }
        conclusive += 1;
        let pair = RowAddr::new(probe.index() ^ 1);
        let is_paired = obs.flipped.len() == 1 && obs.flipped[0].0 == pair;
        if !is_paired {
            return Ok(Some(false));
        }
    }
    Ok((conclusive > 0).then_some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Module, ModuleConfig, Topology};

    fn controller_with(mapping: RowMapping, topology: Topology) -> MemoryController {
        let mut config = ModuleConfig::small_test();
        config.mapping = mapping;
        config.topology = topology;
        MemoryController::new(Module::new(config, 61))
    }

    fn probes() -> Vec<RowAddr> {
        // Mirror/XOR mappings preserve adjacency for block-interior rows,
        // so discrimination requires probes at block boundaries too.
        vec![
            RowAddr::new(100),
            RowAddr::new(333),
            RowAddr::new(512), // block-edge under mirrors and MsbXor
            RowAddr::new(615), // ≡ 7 (mod 8): the opposite block edge
            RowAddr::new(740),
        ]
    }

    #[test]
    fn probe_finds_identity_neighbours() {
        let mut mc = controller_with(RowMapping::Identity, Topology::Linear);
        let obs = probe_adjacency(&mut mc, Bank::new(0), RowAddr::new(100), 8, 80_000).unwrap();
        let mut nearest = obs.nearest();
        nearest.sort();
        assert_eq!(nearest, vec![RowAddr::new(99), RowAddr::new(101)]);
        // Distance-2 rows flip too, but with fewer flips.
        assert!(obs.flipped.len() >= 2);
    }

    #[test]
    fn discovers_identity() {
        let mut mc = controller_with(RowMapping::Identity, Topology::Linear);
        let found =
            discover_mapping(&mut mc, Bank::new(0), &probes(), &candidate_mappings(), 80_000)
                .unwrap();
        assert_eq!(found, Some(RowMapping::Identity));
    }

    #[test]
    fn discovers_block_mirror() {
        let mut mc = controller_with(RowMapping::block_mirror(3), Topology::Linear);
        let found =
            discover_mapping(&mut mc, Bank::new(0), &probes(), &candidate_mappings(), 80_000)
                .unwrap();
        assert_eq!(found, Some(RowMapping::block_mirror(3)));
    }

    #[test]
    fn discovers_msb_xor() {
        let mut mc = controller_with(RowMapping::msb_xor(3, 0b110), Topology::Linear);
        let found =
            discover_mapping(&mut mc, Bank::new(0), &probes(), &candidate_mappings(), 80_000)
                .unwrap();
        assert_eq!(found, Some(RowMapping::msb_xor(3, 0b110)));
    }

    #[test]
    fn rejects_all_when_mapping_unknown() {
        // A remapped (repaired) module matches no clean candidate when a
        // probe's neighbourhood crosses the swap.
        let mapping = RowMapping::Identity.with_swaps(vec![(100, 900), (101, 901)]);
        let mut mc = controller_with(mapping, Topology::Linear);
        let found = discover_mapping(
            &mut mc,
            Bank::new(0),
            &[RowAddr::new(100), RowAddr::new(333)],
            &candidate_mappings(),
            200_000,
        )
        .unwrap();
        assert_eq!(found, None);
    }

    #[test]
    fn detects_paired_topology() {
        let mut mc = controller_with(RowMapping::Identity, Topology::Paired);
        assert_eq!(
            detect_paired_rows(&mut mc, Bank::new(0), &probes(), 300_000).unwrap(),
            Some(true)
        );
        let mut mc = controller_with(RowMapping::Identity, Topology::Linear);
        assert_eq!(
            detect_paired_rows(&mut mc, Bank::new(0), &probes(), 300_000).unwrap(),
            Some(false)
        );
    }

    #[test]
    fn paired_detection_is_inconclusive_without_flips() {
        let mut mc = controller_with(RowMapping::Identity, Topology::Paired);
        // Far too few hammers to flip anything.
        assert_eq!(detect_paired_rows(&mut mc, Bank::new(0), &probes(), 10).unwrap(), None);
    }

    #[test]
    fn mapping_explains_is_exact() {
        let obs = AdjacencyObservation {
            probe: RowAddr::new(10),
            flipped: vec![(RowAddr::new(9), 50), (RowAddr::new(11), 48), (RowAddr::new(8), 3)],
        };
        assert!(mapping_explains(&RowMapping::Identity, 1024, &obs));
        // Interior rows cannot discriminate a block mirror (adjacency is
        // preserved inside a block)…
        assert!(mapping_explains(&RowMapping::block_mirror(3), 1024, &obs));
        // …but a block-edge probe can: under the mirror, logical 8 sits
        // at physical 15, adjacent to physical 14 and 16 = logical 9 and
        // 23 — not logical 7 and 9.
        let edge = AdjacencyObservation {
            probe: RowAddr::new(8),
            flipped: vec![(RowAddr::new(7), 50), (RowAddr::new(9), 48)],
        };
        assert!(mapping_explains(&RowMapping::Identity, 1024, &edge));
        assert!(!mapping_explains(&RowMapping::block_mirror(3), 1024, &edge));
    }
}
