//! Error type for U-TRR experiments.

use std::error::Error;
use std::fmt;

use dram_sim::{DramError, Nanos};

/// Errors raised by Row Scout and TRR Analyzer runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtrrError {
    /// A DDR protocol/addressing error from the device.
    Dram(DramError),
    /// Row Scout exhausted its retention-time budget before finding the
    /// requested number of row groups.
    NotEnoughRowGroups {
        /// Groups found and validated before giving up.
        found: usize,
        /// Groups the profiling configuration asked for.
        needed: usize,
        /// The retention-time ceiling that was reached.
        max_retention: Nanos,
    },
    /// The refresh-schedule learner could not observe a periodic regular
    /// refresh of the probe row.
    ScheduleNotFound,
    /// An experiment precondition failed: the requested hammer count
    /// already causes RowHammer bit flips on the profiled rows, so
    /// retention-side-channel inference would be corrupted.
    HammerCountUnsafe {
        /// The offending per-aggressor hammer count.
        count: u64,
    },
    /// Physical-adjacency verification failed: hammering the supposed
    /// aggressor did not flip the profiled rows (§5.3 second method).
    AdjacencyBroken,
    /// An experiment was invoked with an empty input set (e.g. no row
    /// groups), so there is nothing to measure.
    EmptyInput,
}

impl fmt::Display for UtrrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtrrError::Dram(e) => write!(f, "device error: {e}"),
            UtrrError::NotEnoughRowGroups { found, needed, max_retention } => write!(
                f,
                "row scout found {found} of {needed} row groups before reaching \
                 the {max_retention} retention ceiling"
            ),
            UtrrError::ScheduleNotFound => {
                write!(f, "no periodic regular refresh observed for the probe row")
            }
            UtrrError::HammerCountUnsafe { count } => write!(
                f,
                "{count} hammers already flip the profiled rows via RowHammer; \
                 pick a smaller count"
            ),
            UtrrError::AdjacencyBroken => write!(
                f,
                "aggressor row does not disturb the profiled rows; the rows are \
                 not physically adjacent (remapped?)"
            ),
            UtrrError::EmptyInput => {
                write!(f, "experiment invoked with an empty input set (no row groups)")
            }
        }
    }
}

impl Error for UtrrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UtrrError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for UtrrError {
    fn from(e: DramError) -> Self {
        UtrrError::Dram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::Bank;

    #[test]
    fn displays_are_informative() {
        let e = UtrrError::NotEnoughRowGroups {
            found: 1,
            needed: 3,
            max_retention: Nanos::from_ms(4_000),
        };
        assert!(e.to_string().contains("1 of 3"));
        let e: UtrrError = DramError::BankClosed { bank: Bank::new(0) }.into();
        assert!(e.to_string().contains("device error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn every_variant_displays_its_key_fact() {
        let cases: Vec<(UtrrError, &str)> = vec![
            (
                UtrrError::NotEnoughRowGroups {
                    found: 2,
                    needed: 5,
                    max_retention: Nanos::from_ms(6_000),
                },
                "2 of 5",
            ),
            (UtrrError::ScheduleNotFound, "no periodic regular refresh"),
            (UtrrError::HammerCountUnsafe { count: 9_000 }, "9000 hammers"),
            (UtrrError::AdjacencyBroken, "not physically adjacent"),
            (UtrrError::EmptyInput, "empty input set"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{err:?} display {msg:?} lacks {needle:?}");
        }
    }

    #[test]
    fn only_device_errors_carry_a_source() {
        let wrapped: UtrrError = DramError::BankClosed { bank: Bank::new(3) }.into();
        assert!(
            matches!(&wrapped, UtrrError::Dram(DramError::BankClosed { bank }) if bank.index() == 3)
        );
        assert!(wrapped.source().is_some());
        for err in [
            UtrrError::ScheduleNotFound,
            UtrrError::AdjacencyBroken,
            UtrrError::EmptyInput,
            UtrrError::HammerCountUnsafe { count: 1 },
        ] {
            assert!(err.source().is_none(), "{err:?} must not claim a source");
        }
    }
}
