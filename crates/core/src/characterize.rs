//! RowHammer characterization utilities that accompany the TRR
//! methodology: measuring `HC_first` (footnote 1 of the paper), the
//! interleaved-vs-cascaded asymmetry (§5.2), and data-pattern
//! sensitivity — all with refresh disabled, as the paper's
//! pre-experiments do.

use dram_sim::{Bank, DataPattern, PhysRow, Topology};
use softmc::MemoryController;

use crate::error::UtrrError;
use crate::recovery;

/// Ceiling on the `HC_first` doubling search under the recovery ladder
/// (hostile severity): a substrate whose faults keep victims reading
/// clean would otherwise double forever. Two orders of magnitude above
/// any shipped `HC_first`, so it never binds on honest measurements.
pub const HC_SEARCH_CAP: u64 = 1 << 21;

/// How aggressors are arranged for an `HC_first` measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HammerShape {
    /// Classic double-sided around the victim.
    DoubleSided,
    /// Single pair aggressor (paired-row organizations), alternated with
    /// a far row so every activation toggles at full weight.
    PairSided,
}

/// Measures `HC_first`: the minimum per-aggressor activation count in a
/// double-sided pattern that causes at least one bit flip in any of
/// `samples` victim rows spread across the bank (bisection, refresh
/// disabled). On paired-row organizations the single pair aggressor is
/// alternated with a distant row, preserving the per-aggressor count
/// semantics.
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn measure_hc_first(
    mc: &mut MemoryController,
    bank: Bank,
    samples: u32,
    start_guess: u64,
) -> Result<u64, UtrrError> {
    let rows = mc.module().geometry().rows_per_bank;
    let shape = match mc.module().config().topology {
        Topology::Paired => HammerShape::PairSided,
        Topology::Linear => HammerShape::DoubleSided,
    };
    let samples = samples.clamp(1, rows / 8);
    let stride = (rows - 16) / samples;
    let victims: Vec<PhysRow> = (0..samples).map(|i| PhysRow::new(8 + i * stride)).collect();

    let flips_at = |mc: &mut MemoryController, count: u64| -> Result<bool, UtrrError> {
        for &v in &victims {
            let victim = mc.module().logical_of(v);
            mc.write_row(bank, victim, DataPattern::RowStripe)?;
            match shape {
                HammerShape::PairSided => {
                    let pair = mc.module().logical_of(PhysRow::new(v.index() ^ 1));
                    let far = mc.module().logical_of(PhysRow::new((v.index() + rows / 2) % rows));
                    mc.module_mut().hammer_pair(bank, pair, far, count)?;
                }
                HammerShape::DoubleSided => {
                    let up = mc.module().logical_of(PhysRow::new(v.index() - 1));
                    let down = mc.module().logical_of(PhysRow::new(v.index() + 1));
                    mc.module_mut().hammer_pair(bank, up, down, count)?;
                }
            }
            if !mc.read_row(bank, victim)?.is_clean() {
                return Ok(true);
            }
        }
        Ok(false)
    };

    let mut hi = start_guess.max(64);
    while !flips_at(mc, hi)? {
        // Under the recovery ladder the doubling search carries a
        // circuit breaker: a hostile substrate that keeps victims
        // reading clean must not spin the search forever. Tripping
        // closes the measurement at the cap (recorded on the ladder);
        // below ladder severity the search is unbounded, as before.
        if recovery::ladder_active(mc) && hi >= HC_SEARCH_CAP {
            mc.recovery_mut().budget_trips += 1;
            recovery::ladder_event(mc, recovery::CTR_BUDGET_TRIPS, "hc_cap", bank, None);
            return Ok(HC_SEARCH_CAP);
        }
        hi *= 2;
    }
    let mut lo = 1u64;
    while lo + lo / 64 + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if flips_at(mc, mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// The §5.2 hammering-mode comparison: flips on the same victims at the
/// same per-aggressor count, interleaved vs cascaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammerModeComparison {
    /// Total victim flips under interleaved (alternating) hammering.
    pub interleaved_flips: u64,
    /// Total victim flips under cascaded (back-to-back) hammering.
    pub cascaded_flips: u64,
}

impl HammerModeComparison {
    /// The interleaved/cascaded flip ratio (∞-safe: cascaded zero maps
    /// to the interleaved count).
    pub fn advantage(&self) -> f64 {
        if self.cascaded_flips == 0 {
            self.interleaved_flips as f64
        } else {
            self.interleaved_flips as f64 / self.cascaded_flips as f64
        }
    }
}

/// Measures the interleaved-vs-cascaded disturbance asymmetry over
/// `samples` victims at `count` hammers per aggressor (refresh
/// disabled). The paper: "interleaved hammering generally causes more
/// bit flips (up to four orders of magnitude)".
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn compare_hammer_modes(
    mc: &mut MemoryController,
    bank: Bank,
    samples: u32,
    count: u64,
) -> Result<HammerModeComparison, UtrrError> {
    let rows = mc.module().geometry().rows_per_bank;
    let samples = samples.clamp(1, rows / 8);
    let stride = (rows - 16) / samples;
    let mut totals = [0u64; 2];
    for (mode, total) in totals.iter_mut().enumerate() {
        for i in 0..samples {
            let v = PhysRow::new(8 + i * stride);
            let victim = mc.module().logical_of(v);
            let up = mc.module().logical_of(PhysRow::new(v.index() - 1));
            let down = mc.module().logical_of(PhysRow::new(v.index() + 1));
            mc.write_row(bank, victim, DataPattern::RowStripe)?;
            if mode == 0 {
                mc.module_mut().hammer_pair(bank, up, down, count)?;
            } else {
                mc.module_mut().hammer(bank, up, count)?;
                mc.module_mut().hammer(bank, down, count)?;
            }
            *total += mc.read_row(bank, victim)?.flip_count() as u64;
        }
    }
    Ok(HammerModeComparison { interleaved_flips: totals[0], cascaded_flips: totals[1] })
}

/// Victim flips per initialization pattern, at a fixed double-sided
/// hammer count — "the RowHammer vulnerability greatly depends on the
/// data values stored" (§5.2).
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn data_pattern_sensitivity(
    mc: &mut MemoryController,
    bank: Bank,
    samples: u32,
    count: u64,
) -> Result<Vec<(DataPattern, u64)>, UtrrError> {
    let rows = mc.module().geometry().rows_per_bank;
    let samples = samples.clamp(1, rows / 8);
    let stride = (rows - 16) / samples;
    let mut out = Vec::new();
    for pattern in
        [DataPattern::Zeros, DataPattern::Ones, DataPattern::Checkerboard, DataPattern::RowStripe]
    {
        let mut total = 0u64;
        for i in 0..samples {
            let v = PhysRow::new(8 + i * stride);
            let victim = mc.module().logical_of(v);
            let up = mc.module().logical_of(PhysRow::new(v.index() - 1));
            let down = mc.module().logical_of(PhysRow::new(v.index() + 1));
            mc.write_row(bank, victim, pattern.clone())?;
            mc.write_row(bank, up, DataPattern::RowStripe)?;
            mc.write_row(bank, down, DataPattern::RowStripe)?;
            mc.module_mut().hammer_pair(bank, up, down, count)?;
            total += mc.read_row(bank, victim)?.flip_count() as u64;
        }
        out.push((pattern, total));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Module, ModuleConfig};

    const BANK: Bank = Bank::new(0);

    fn controller(seed: u64) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::small_test(), seed))
    }

    #[test]
    fn hc_first_tracks_ground_truth() {
        let mut mc = controller(71);
        // Test physics: hc_first = 1000, threshold floor = 2000 units;
        // double-sided count n gives ~2n units.
        let measured = measure_hc_first(&mut mc, BANK, 24, 256).unwrap();
        assert!((900..2_600).contains(&measured), "measured {measured}, physics HC_first 1000");
    }

    #[test]
    fn hc_first_on_paired_organization() {
        let mut config = ModuleConfig::small_test();
        config.topology = Topology::Paired;
        // Paired calibration convention: per-aggressor count at first
        // flip equals hc_first when the config carries hc_first / 2.
        config.physics.hc_first = 500.0;
        let mut mc = MemoryController::new(Module::new(config, 71));
        let measured = measure_hc_first(&mut mc, BANK, 24, 256).unwrap();
        assert!((900..2_600).contains(&measured), "measured {measured}");
    }

    #[test]
    fn interleaved_advantage_is_large() {
        let mut mc = controller(73);
        let cmp = compare_hammer_modes(&mut mc, BANK, 16, 2_500).unwrap();
        assert!(cmp.interleaved_flips > 0);
        assert!(
            cmp.advantage() > 3.0,
            "interleaved must dominate: {cmp:?} (advantage {})",
            cmp.advantage()
        );
    }

    #[test]
    fn pattern_sensitivity_reports_all_patterns() {
        let mut mc = controller(79);
        let table = data_pattern_sensitivity(&mut mc, BANK, 16, 4_000).unwrap();
        assert_eq!(table.len(), 4);
        let total: u64 = table.iter().map(|&(_, n)| n).sum();
        assert!(total > 0, "some pattern must flip: {table:?}");
        // Solid patterns expose roughly half the hammerable cells each;
        // both orientations together cover them all.
        let zeros = table[0].1;
        let ones = table[1].1;
        assert!(zeros > 0 && ones > 0);
    }
}
