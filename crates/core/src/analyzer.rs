//! TRR Analyzer (TRR-A): the experiment engine of §5.
//!
//! An [`Experiment`] is the Fig. 7 template:
//!
//! 1. optionally reset the TRR mechanism's internal state with a
//!    dummy-row storm (Requirement 4);
//! 2. initialize the profiled (victim) rows with their profiling pattern
//!    and the aggressor rows with a configurable pattern;
//! 3. wait half the victims' retention time;
//! 4. run one or more *rounds* of {hammer aggressors and dummy rows,
//!    issue `REF` commands};
//! 5. wait out the second half of the retention time (minus the time
//!    spent hammering, as the paper specifies);
//! 6. read the victims and classify each as TRR-refreshed, regularly
//!    refreshed (using a learned [`RefreshSchedule`]), or not refreshed.

use dram_sim::{Bank, DataPattern, Nanos, RowAddr};
use softmc::{HammerSpec, MemoryController};

use crate::error::UtrrError;
use crate::rowscout::ProfiledRowGroup;
use crate::schedule::RefreshSchedule;

/// Counter name for victims classified [`VictimOutcome::NotRefreshed`].
pub const CTR_NOT_REFRESHED: &str = "utrr.outcome.not_refreshed";
/// Counter name for victims classified [`VictimOutcome::RegularRefresh`].
pub const CTR_REGULAR_REFRESH: &str = "utrr.outcome.regular_refresh";
/// Counter name for victims classified [`VictimOutcome::TrrRefresh`].
pub const CTR_TRR_REFRESH: &str = "utrr.outcome.trr_refresh";

/// A TRR Analyzer experiment (the "Experiment Config" box of Fig. 3).
///
/// The hammer-and-refresh rounds must complete well inside half the
/// victims' retention time: the second decay half-window is shortened by
/// the time the rounds consumed (as the paper specifies), and if the
/// rounds outlast `retention / 2` entirely, victims refreshed during
/// them can decay past their full retention and read as
/// [`VictimOutcome::NotRefreshed`]. Keep total round activity under a
/// few percent of the retention bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Bank under test.
    pub bank: Bank,
    /// Victim rows (the Row Scout-provided profiled rows).
    pub victims: Vec<RowAddr>,
    /// The victims' shared retention bucket.
    pub retention: Nanos,
    /// Pattern the victims were profiled with (must be reused —
    /// retention failures are data-dependent).
    pub victim_pattern: DataPattern,
    /// Aggressor rows, counts, and hammering mode (Requirement 1).
    pub hammer: HammerSpec,
    /// Pattern written into the aggressor rows before hammering
    /// ("the RowHammer vulnerability greatly depends on the data values
    /// stored in an aggressor row"); `None` leaves them unwritten, which
    /// is what dummy rows do.
    pub aggressor_pattern: Option<DataPattern>,
    /// Dummy rows hammered in addition to the aggressors (Requirement 2).
    pub dummies: Vec<RowAddr>,
    /// Hammers per dummy row per round (one count for all dummies, as in
    /// the paper).
    pub dummy_hammers: u64,
    /// Hammer the dummies *before* the aggressors in each round (the
    /// vendor-C custom pattern needs this order).
    pub dummies_first: bool,
    /// `REF` commands issued at the end of each round (Requirement 3).
    pub refs_per_round: u64,
    /// Number of rounds.
    pub rounds: u32,
    /// Reset TRR state before the experiment by hammering these rows for
    /// this many 64 ms refresh periods (Requirement 4); empty = skip.
    pub reset_dummies: Vec<RowAddr>,
    /// Refresh periods for the reset storm.
    pub reset_periods: u32,
}

impl Experiment {
    /// An experiment template over one profiled row group: victims and
    /// retention from the group, everything else defaulted (no hammers,
    /// one round, one `REF`, no state reset).
    pub fn on_group(bank: Bank, group: &ProfiledRowGroup) -> Self {
        Experiment {
            bank,
            victims: group.victim_rows(),
            retention: group.retention,
            victim_pattern: group.pattern.clone(),
            hammer: HammerSpec::default(),
            aggressor_pattern: Some(DataPattern::RowStripe),
            dummies: Vec::new(),
            dummy_hammers: 0,
            dummies_first: false,
            refs_per_round: 1,
            rounds: 1,
            reset_dummies: Vec::new(),
            reset_periods: 0,
        }
    }

    /// Sets the hammer spec, builder-style.
    pub fn with_hammer(mut self, hammer: HammerSpec) -> Self {
        self.hammer = hammer;
        self
    }

    /// Sets dummy-row hammering, builder-style.
    pub fn with_dummies(mut self, dummies: Vec<RowAddr>, hammers: u64) -> Self {
        self.dummies = dummies;
        self.dummy_hammers = hammers;
        self
    }

    /// Sets the per-round `REF` count, builder-style.
    pub fn with_refs(mut self, refs_per_round: u64) -> Self {
        self.refs_per_round = refs_per_round;
        self
    }

    /// Enables the Requirement-4 TRR-state reset storm before the
    /// experiment, builder-style.
    pub fn with_reset(mut self, dummies: Vec<RowAddr>, periods: u32) -> Self {
        self.reset_dummies = dummies;
        self.reset_periods = periods;
        self
    }
}

/// Flushes the TRR tracker state (Requirement 4 of §5.1, light-weight
/// form): activates many distinct far-away dummy rows a handful of times
/// each. This evicts every stale tracker entry near the protected rows
/// while leaving the dummies with *small* counters, so subsequent
/// experiments' aggressors immediately dominate any counter-based
/// detector. The heavyweight multi-period storm
/// ([`softmc::MemoryController::reset_trr_state`]) stays available for
/// experiments that also need the refresh machinery exercised.
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn flush_tracker(
    mc: &mut MemoryController,
    bank: Bank,
    avoid: &[RowAddr],
    min_distance: u32,
) -> Result<(), UtrrError> {
    let dummies = mc.pick_dummy_rows(avoid, min_distance, 64);
    for dummy in dummies {
        mc.module_mut().hammer(bank, dummy, 48)?;
    }
    Ok(())
}

/// How one victim row came out of an experiment iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimOutcome {
    /// Bit flips observed: nothing refreshed the row.
    NotRefreshed,
    /// Clean, and a regular refresh was scheduled in the window: the
    /// observation is explained without TRR.
    RegularRefresh,
    /// Clean with no regular refresh scheduled: a TRR-induced refresh.
    TrrRefresh,
}

impl VictimOutcome {
    /// Stable lower-snake-case name, used as the `read_check` trace
    /// event detail and in report output.
    pub fn as_str(self) -> &'static str {
        match self {
            VictimOutcome::NotRefreshed => "not_refreshed",
            VictimOutcome::RegularRefresh => "regular_refresh",
            VictimOutcome::TrrRefresh => "trr_refresh",
        }
    }
}

/// The result of one experiment iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentOutcome {
    /// Per-victim outcome, in `victims` order.
    pub victims: Vec<VictimOutcome>,
    /// Global `REF` count before the first round's refreshes.
    pub ref_start: u64,
    /// Global `REF` count after the last round.
    pub ref_end: u64,
    /// Trace-event IDs of the per-victim `read_check` events backing
    /// `victims` — the raw evidence a downstream verdict cites. Empty
    /// when tracing is off or the victims fall outside the trace filter.
    pub evidence: Vec<u64>,
}

impl ExperimentOutcome {
    /// Whether any victim saw a TRR-induced refresh.
    pub fn any_trr(&self) -> bool {
        self.victims.contains(&VictimOutcome::TrrRefresh)
    }

    /// Indices of victims that saw a TRR-induced refresh.
    pub fn trr_victims(&self) -> Vec<usize> {
        self.victims
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == VictimOutcome::TrrRefresh)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The TRR Analyzer: runs [`Experiment`]s and classifies victim-row
/// outcomes.
///
/// Holds per-row [`RefreshSchedule`]s (learned once via
/// [`crate::schedule::learn_refresh_schedule`]) keyed by logical row
/// address; a clean victim with no schedule on file is classified as
/// TRR-refreshed, so schedule-free analysis over-approximates TRR
/// activity by the regular-refresh rate.
#[derive(Debug, Clone, Default)]
pub struct TrrAnalyzer {
    schedules: std::collections::HashMap<RowAddr, RefreshSchedule>,
}

impl TrrAnalyzer {
    /// An analyzer with no schedule knowledge (every clean victim counts
    /// as TRR-refreshed — acceptable when experiments issue far fewer
    /// `REF`s than the regular refresh period).
    pub fn new() -> Self {
        TrrAnalyzer::default()
    }

    /// Registers the learned regular-refresh schedule of a row.
    pub fn add_schedule(&mut self, row: RowAddr, schedule: RefreshSchedule) {
        self.schedules.insert(row, schedule);
    }

    /// The schedule on file for a row, if any.
    pub fn schedule(&self, row: RowAddr) -> Option<&RefreshSchedule> {
        self.schedules.get(&row)
    }

    /// Runs one experiment iteration (Fig. 7).
    ///
    /// The iteration runs under a `utrr.analyzer.experiment` span with
    /// one `utrr.analyzer.round` child per hammer round, and the
    /// per-victim classification is tallied into the
    /// [`CTR_NOT_REFRESHED`], [`CTR_REGULAR_REFRESH`], and
    /// [`CTR_TRR_REFRESH`] counters.
    ///
    /// # Errors
    ///
    /// Propagates device protocol errors.
    pub fn run(
        &self,
        mc: &mut MemoryController,
        exp: &Experiment,
    ) -> Result<ExperimentOutcome, UtrrError> {
        let registry = std::sync::Arc::clone(mc.registry());
        let span = obs::span!(
            registry,
            "utrr.analyzer.experiment",
            mc.now().as_ns(),
            victims = exp.victims.len() as u64,
            rounds = exp.rounds as u64,
            refs_per_round = exp.refs_per_round
        );
        let result = self.run_inner(mc, exp);
        if let Ok(outcome) = &result {
            let mut tally = [0u64; 3];
            for v in &outcome.victims {
                let slot = match v {
                    VictimOutcome::NotRefreshed => 0,
                    VictimOutcome::RegularRefresh => 1,
                    VictimOutcome::TrrRefresh => 2,
                };
                tally[slot] += 1;
            }
            registry.counter(CTR_NOT_REFRESHED).add(tally[0]);
            registry.counter(CTR_REGULAR_REFRESH).add(tally[1]);
            registry.counter(CTR_TRR_REFRESH).add(tally[2]);
        }
        span.finish(mc.now().as_ns());
        result
    }

    fn run_inner(
        &self,
        mc: &mut MemoryController,
        exp: &Experiment,
    ) -> Result<ExperimentOutcome, UtrrError> {
        // ② Optional TRR-state reset storm.
        if !exp.reset_dummies.is_empty() && exp.reset_periods > 0 {
            mc.reset_trr_state(exp.bank, &exp.reset_dummies, exp.reset_periods)?;
        }

        // ① Initialize victim and aggressor rows. Verified writes: a
        // dropped or garbled victim init would read as a spurious bit
        // flip at step ⑥ and be misclassified as "not refreshed".
        // Fault-free this is exactly one write per row, as before.
        for &victim in &exp.victims {
            crate::robust::write_row_checked(mc, exp.bank, victim, &exp.victim_pattern)?;
        }
        if let Some(pattern) = &exp.aggressor_pattern {
            for &(aggressor, _) in &exp.hammer.aggressors {
                crate::robust::write_row_checked(mc, exp.bank, aggressor, pattern)?;
            }
        }

        // Wait the first half of the retention window. On a faulty
        // substrate each half is stretched by 5% — headroom past the
        // injected retention-drift amplitude, so an unrefreshed victim
        // still decays past its bucket when the environment runs a
        // couple of percent "cold" (a clean read here must only ever
        // mean "refreshed"). Fault-free the window is exactly the
        // retention time, keeping the command stream unchanged.
        let half_window =
            if mc.faults_enabled() { exp.retention * 21 / 40 } else { exp.retention / 2 };
        mc.wait_no_refresh(half_window);

        // ③④ Hammer rounds, each ending with REFs.
        let ref_start = mc.module().ref_count();
        let active_start = mc.now();
        for round in 0..exp.rounds {
            let registry = std::sync::Arc::clone(mc.registry());
            let round_span =
                obs::span!(registry, "utrr.analyzer.round", mc.now().as_ns(), round = round as u64);
            let mut step = || -> Result<(), UtrrError> {
                if exp.dummies_first {
                    self.hammer_dummies(mc, exp)?;
                    mc.hammer(exp.bank, &exp.hammer)?;
                } else {
                    mc.hammer(exp.bank, &exp.hammer)?;
                    self.hammer_dummies(mc, exp)?;
                }
                mc.refresh(exp.refs_per_round);
                Ok(())
            };
            let step_result = step();
            round_span.finish(mc.now().as_ns());
            step_result?;
        }
        let ref_end = mc.module().ref_count();
        let active = mc.now() - active_start;

        // ⑤ Second half of the retention window, minus hammering time.
        mc.wait_no_refresh(half_window.saturating_sub(active));

        // ⑥ Read back and classify (majority-voted under fault
        // injection: a single in-flight read flip must not turn a
        // refreshed victim into a "not refreshed" verdict).
        let mut victims = Vec::with_capacity(exp.victims.len());
        let mut evidence = Vec::new();
        for &victim in &exp.victims {
            let clean = crate::robust::read_row_voted(mc, exp.bank, victim)?.is_clean();
            let outcome = if !clean {
                VictimOutcome::NotRefreshed
            } else {
                match self.schedules.get(&victim) {
                    Some(s) if s.covers(ref_start, ref_end) => VictimOutcome::RegularRefresh,
                    _ => VictimOutcome::TrrRefresh,
                }
            };
            if mc.registry().tracing_enabled() {
                let registry = std::sync::Arc::clone(mc.registry());
                if let Some(id) = registry.trace(
                    obs::TraceKind::ReadCheck,
                    mc.now().as_ns(),
                    u32::from(exp.bank.index()),
                    Some(mc.module().phys_of(victim).index()),
                    &[("clean", u64::from(clean))],
                    outcome.as_str(),
                ) {
                    evidence.push(id);
                }
            }
            victims.push(outcome);
        }
        Ok(ExperimentOutcome { victims, ref_start, ref_end, evidence })
    }

    /// Verifies that `count` hammers per aggressor do **not** cause
    /// RowHammer bit flips on the victims (the paper's §6.1.1 safety
    /// check), so that a clean victim can only mean "refreshed".
    ///
    /// # Errors
    ///
    /// [`UtrrError::HammerCountUnsafe`] when flips appear; device errors
    /// are propagated.
    pub fn verify_hammer_safe(
        &self,
        mc: &mut MemoryController,
        exp: &Experiment,
    ) -> Result<(), UtrrError> {
        for &victim in &exp.victims {
            crate::robust::write_row_checked(mc, exp.bank, victim, &exp.victim_pattern)?;
        }
        mc.hammer(exp.bank, &exp.hammer)?;
        for &victim in &exp.victims {
            if !crate::robust::read_row_voted(mc, exp.bank, victim)?.is_clean() {
                let count = exp.hammer.aggressors.iter().map(|&(_, n)| n).max().unwrap_or(0);
                return Err(UtrrError::HammerCountUnsafe { count });
            }
        }
        Ok(())
    }

    /// Verifies that the experiment's aggressors are physically adjacent
    /// to the victims by hammering them a large number of times with
    /// refresh disabled (§5.3's second method: 300K activations must
    /// produce RowHammer bit flips).
    ///
    /// # Errors
    ///
    /// [`UtrrError::AdjacencyBroken`] when no flips appear; device errors
    /// are propagated.
    pub fn verify_adjacency(
        &self,
        mc: &mut MemoryController,
        exp: &Experiment,
        hammers: u64,
    ) -> Result<(), UtrrError> {
        for &victim in &exp.victims {
            crate::robust::write_row_checked(mc, exp.bank, victim, &exp.victim_pattern)?;
        }
        let heavy = HammerSpec {
            aggressors: exp.hammer.aggressors.iter().map(|&(r, _)| (r, hammers)).collect(),
            mode: exp.hammer.mode,
        };
        mc.hammer(exp.bank, &heavy)?;
        let mut any_flip = false;
        for &victim in &exp.victims {
            if !crate::robust::read_row_voted(mc, exp.bank, victim)?.is_clean() {
                any_flip = true;
            }
            // Restore the victim for subsequent experiments.
            mc.write_row(exp.bank, victim, exp.victim_pattern.clone())?;
        }
        if any_flip {
            Ok(())
        } else {
            Err(UtrrError::AdjacencyBroken)
        }
    }

    fn hammer_dummies(&self, mc: &mut MemoryController, exp: &Experiment) -> Result<(), UtrrError> {
        for &dummy in &exp.dummies {
            mc.module_mut().hammer(exp.bank, dummy, exp.dummy_hammers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RowGroupLayout;
    use crate::rowscout::{RowScout, ScoutConfig};
    use dram_sim::{Module, ModuleConfig};
    use softmc::HammerMode;
    use trr::CounterTrr;

    const BANK: Bank = Bank::new(0);

    fn scout_one(mc: &mut MemoryController) -> ProfiledRowGroup {
        RowScout::new(ScoutConfig::new(BANK, 768, RowGroupLayout::single_aggressor_pair(), 1))
            .scan(mc)
            .unwrap()
            .remove(0)
    }

    #[test]
    fn unhammered_victims_decay() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 41));
        let group = scout_one(&mut mc);
        let exp = Experiment::on_group(BANK, &group);
        // No hammering, no REFs beyond the single one → no TRR, and one
        // REF almost never hits the victims' regular slot.
        let outcome = TrrAnalyzer::new().run(&mut mc, &exp).unwrap();
        assert!(outcome.victims.iter().all(|v| *v == VictimOutcome::NotRefreshed), "{outcome:?}");
    }

    #[test]
    fn counter_trr_refresh_is_detected() {
        let config = ModuleConfig::small_test();
        let module = Module::with_engine(config, Box::new(CounterTrr::a_trr1(2)), 41);
        let mut mc = MemoryController::new(module);
        let group = scout_one(&mut mc);
        let aggressor = group.aggressors[0];
        let exp = Experiment::on_group(BANK, &group)
            .with_hammer(HammerSpec::single_sided(aggressor, 400))
            .with_refs(1);
        let analyzer = TrrAnalyzer::new();
        analyzer.verify_hammer_safe(&mut mc, &exp).unwrap();
        // Run 36 iterations (one REF each): four hit TRR-capable REFs.
        // The two TREF_a instances always detect our aggressor (highest
        // count); the two TREF_b instances walk the table and may land on
        // stale entries instead.
        let mut trr_hits = 0;
        for _ in 0..36 {
            if analyzer.run(&mut mc, &exp).unwrap().any_trr() {
                trr_hits += 1;
            }
        }
        assert!((2..=4).contains(&trr_hits), "TREF_a fires every 18th REF, got {trr_hits}");
    }

    #[test]
    fn regular_refresh_is_filtered_with_schedules() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 43));
        let group = scout_one(&mut mc);
        let mut analyzer = TrrAnalyzer::new();
        crate::schedule::learn_group_schedules(&mut mc, BANK, &group, &mut analyzer).unwrap();
        // Issue a full refresh period of REFs per iteration: the victims
        // are guaranteed to be regularly refreshed, and must be
        // classified as such (no TRR on this module).
        let exp = Experiment::on_group(BANK, &group).with_refs(1024);
        let outcome = analyzer.run(&mut mc, &exp).unwrap();
        assert!(outcome.victims.iter().all(|v| *v == VictimOutcome::RegularRefresh), "{outcome:?}");
    }

    #[test]
    fn hammer_safety_check_rejects_excessive_counts() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 47));
        let group = scout_one(&mut mc);
        let aggressor = group.aggressors[0];
        let exp = Experiment::on_group(BANK, &group)
            .with_hammer(HammerSpec::single_sided(aggressor, 500_000));
        let err = TrrAnalyzer::new().verify_hammer_safe(&mut mc, &exp).unwrap_err();
        assert!(matches!(err, UtrrError::HammerCountUnsafe { count: 500_000 }));
    }

    #[test]
    fn adjacency_check_passes_for_real_neighbours() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 53));
        let group = scout_one(&mut mc);
        let aggressor = group.aggressors[0];
        let exp =
            Experiment::on_group(BANK, &group).with_hammer(HammerSpec::single_sided(aggressor, 1));
        TrrAnalyzer::new().verify_adjacency(&mut mc, &exp, 300_000).unwrap();
    }

    #[test]
    fn adjacency_check_fails_for_distant_rows() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 53));
        let group = scout_one(&mut mc);
        let far = RowAddr::new((group.base.index() + 500) % 1000);
        let exp = Experiment::on_group(BANK, &group).with_hammer(HammerSpec::single_sided(far, 1));
        let err = TrrAnalyzer::new().verify_adjacency(&mut mc, &exp, 300_000).unwrap_err();
        assert_eq!(err, UtrrError::AdjacencyBroken);
    }

    #[test]
    fn dummy_rows_divert_counter_trr() {
        // With enough dummy rows hammered after the aggressor, the
        // counter table's LRU eviction drops the aggressor and the
        // victims decay — the core of the §7.1 vendor-A pattern.
        let module =
            Module::with_engine(ModuleConfig::small_test(), Box::new(CounterTrr::a_trr1(2)), 41);
        let mut mc = MemoryController::new(module);
        let group = scout_one(&mut mc);
        let aggressor = group.aggressors[0];
        let dummies = mc.pick_dummy_rows(&group.victim_rows(), 100, 16);
        let exp = Experiment::on_group(BANK, &group)
            .with_hammer(HammerSpec::single_sided(aggressor, 24))
            .with_dummies(dummies, 6)
            .with_refs(1);
        let analyzer = TrrAnalyzer::new();
        let mut trr_hits = 0;
        for _ in 0..18 {
            if analyzer.run(&mut mc, &exp).unwrap().any_trr() {
                trr_hits += 1;
            }
        }
        assert_eq!(trr_hits, 0, "diverted TRR must never refresh the victims");
    }

    #[test]
    fn experiment_builders() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 59));
        let group = scout_one(&mut mc);
        let exp = Experiment::on_group(BANK, &group)
            .with_hammer(
                HammerSpec::double_sided(RowAddr::new(10), 5).with_mode(HammerMode::Cascaded),
            )
            .with_dummies(vec![RowAddr::new(900)], 3)
            .with_refs(7);
        assert_eq!(exp.refs_per_round, 7);
        assert_eq!(exp.dummy_hammers, 3);
        assert_eq!(exp.hammer.mode, HammerMode::Cascaded);
    }
}
