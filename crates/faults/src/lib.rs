//! Deterministic, seeded fault injection for the simulated
//! device/controller boundary.
//!
//! On real DDR4 hardware, U-TRR's methodology only works because Row
//! Scout actively survives an unreliable substrate (§4.1 of the paper:
//! VRT rows are discarded, retention times re-verified, rows re-profiled
//! when their behaviour drifts). This crate turns the simulator's
//! too-perfect substrate back into a hostile one — *reproducibly*:
//!
//! * a [`FaultPlan`] schedules transient read bit-flips, spurious stuck
//!   reads, dropped and garbled writes, a slow retention-time drift over
//!   simulated time (a temperature-style ramp), and VRT burst episodes
//!   that temporarily raise the device's VRT switch probability;
//! * every decision is drawn from the workspace's own SplitMix64 stream,
//!   so a `(profile, seed)` pair replays the exact same fault sequence
//!   against the exact same command sequence;
//! * [`FaultyController`] wraps a [`MemoryController`] with a plan while
//!   exposing the same interface (via `Deref`), so every caller in
//!   `core`, `attacks`, and `bench` runs unmodified.
//!
//! The crate is std-only and depends only on `dram-sim`, `softmc`, and
//! `obs`. Injected-fault counts are reported as `faults.injected.*`
//! counters in the standard metrics registry.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::str::FromStr;
use std::sync::Arc;

use dram_sim::rng::SplitMix64;
use dram_sim::{Bank, DataPattern, Module, Nanos, RowAddr, RowReadout};
use obs::MetricsRegistry;
use softmc::{FaultInjector, MemoryController, WriteFault};

/// Counter: total faults injected, across all kinds.
pub const CTR_INJECTED_TOTAL: &str = "faults.injected.total";
/// Counter: transient read bit-flips injected.
pub const CTR_READ_FLIPS: &str = "faults.injected.read_flips";
/// Counter: stuck reads injected (readout forced clean).
pub const CTR_STUCK_READS: &str = "faults.injected.stuck_reads";
/// Counter: row writes silently dropped.
pub const CTR_DROPPED_WRITES: &str = "faults.injected.dropped_writes";
/// Counter: row writes garbled into a different pattern.
pub const CTR_GARBLED_WRITES: &str = "faults.injected.garbled_writes";
/// Counter: VRT burst episodes started.
pub const CTR_VRT_BURSTS: &str = "faults.injected.vrt_bursts";

/// A named fault intensity, selectable from the command line
/// (`--faults none|mild|hostile`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FaultProfile {
    /// No injector at all: the controller takes the exact fault-free
    /// code paths, bit-identical to a build without the fault layer.
    #[default]
    None,
    /// Rare transients and a gentle environment: the profiling pipeline
    /// is expected to recover *correct* results with bounded retries.
    Mild,
    /// Frequent corruption and a volatile environment: the pipeline is
    /// expected to degrade gracefully (partial results, quarantines),
    /// not to stay correct.
    Hostile,
}

impl FaultProfile {
    /// Every selectable profile, in command-line order.
    pub const ALL: [FaultProfile; 3] =
        [FaultProfile::None, FaultProfile::Mild, FaultProfile::Hostile];

    /// The valid `--faults` spellings, in command-line order.
    pub fn names() -> [&'static str; 3] {
        [FaultProfile::None.name(), FaultProfile::Mild.name(), FaultProfile::Hostile.name()]
    }

    /// The stable lower-case name (the `--faults` spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Mild => "mild",
            FaultProfile::Hostile => "hostile",
        }
    }
}

impl FromStr for FaultProfile {
    type Err = ParseFaultProfileError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultProfile::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| ParseFaultProfileError { input: s.to_string() })
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unrecognised `--faults` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultProfileError {
    /// The rejected input.
    pub input: String,
}

impl ParseFaultProfileError {
    /// The valid profile spellings, for callers rendering their own
    /// usage text.
    pub fn valid(&self) -> [&'static str; 3] {
        FaultProfile::names()
    }
}

impl fmt::Display for ParseFaultProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fault profile {:?} (valid profiles: {})",
            self.input,
            self.valid().join(", ")
        )
    }
}

impl std::error::Error for ParseFaultProfileError {}

/// Typed "no injector for this profile" error: [`FaultProfile::None`]
/// deliberately has no [`FaultConfig`], and callers must handle that
/// case explicitly instead of treating a silent `None` as "disabled".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultsDisabled;

impl fmt::Display for FaultsDisabled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault injection is disabled for profile \"none\"; no injector to build")
    }
}

impl std::error::Error for FaultsDisabled {}

/// Tunable fault rates and environmental parameters of a [`FaultPlan`].
///
/// Probabilities are per affected command (read or write); the drift
/// and burst parameters evolve with *simulated* time, sampled at the
/// controller's bulk time steps (waits, paced refresh bursts).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a row read comes back with transient bit-flips.
    pub read_flip_prob: f64,
    /// Most transient flips injected into one corrupted read (at least 1).
    pub max_read_flip_bits: u32,
    /// Probability that a row read comes back stuck at the written
    /// pattern (all real flips masked).
    pub stuck_read_prob: f64,
    /// Probability that a row write is silently dropped.
    pub dropped_write_prob: f64,
    /// Probability that a row write lands with a garbled pattern.
    pub garbled_write_prob: f64,
    /// Peak relative retention drift: effective retention oscillates
    /// between `1 - a` and `1 + a` times nominal (temperature ramp).
    pub drift_amplitude: f64,
    /// Period of one full drift oscillation in simulated time.
    pub drift_period: Nanos,
    /// Per-tick probability that a VRT burst episode starts.
    pub vrt_burst_prob: f64,
    /// VRT switch probability while a burst is active (the device's
    /// configured value is ~0.08).
    pub vrt_burst_switch_prob: f64,
    /// How long one burst episode lasts in simulated time.
    pub vrt_burst_duration: Nanos,
    /// Coarse ordinal severity reported through
    /// [`softmc::FaultInjector::severity`]: `1` for substrates the
    /// baseline self-healing absorbs, `2` for hostile substrates that
    /// unlock the escalating recovery ladder (adaptive vote widths,
    /// candidate relocation, drift re-profiling, budget breakers).
    pub severity: u8,
}

impl FaultConfig {
    /// The `mild` profile: rare transients, ±2% retention drift over a
    /// 4 s period (slow enough that Row Scout's validation pass spans
    /// several periods and filters marginal rows at every drift phase),
    /// short occasional VRT bursts. Calibrated so the reverse-engineering
    /// pipeline still recovers correct ground-truth parameters with
    /// bounded retries.
    pub fn mild() -> Self {
        FaultConfig {
            read_flip_prob: 0.002,
            max_read_flip_bits: 2,
            stuck_read_prob: 0.0005,
            dropped_write_prob: 0.0005,
            garbled_write_prob: 0.0002,
            drift_amplitude: 0.02,
            drift_period: Nanos::from_ms(4_000),
            vrt_burst_prob: 0.001,
            vrt_burst_switch_prob: 0.5,
            vrt_burst_duration: Nanos::from_ms(200),
            severity: 1,
        }
    }

    /// The `hostile` profile: frequent corruption, ±8% drift, long
    /// aggressive VRT bursts. Correctness is not expected here — only
    /// graceful degradation (partial `ScoutReport`s, quarantines,
    /// bounded budgets).
    pub fn hostile() -> Self {
        FaultConfig {
            read_flip_prob: 0.02,
            max_read_flip_bits: 3,
            stuck_read_prob: 0.005,
            dropped_write_prob: 0.005,
            garbled_write_prob: 0.002,
            drift_amplitude: 0.08,
            drift_period: Nanos::from_ms(2_000),
            vrt_burst_prob: 0.01,
            vrt_burst_switch_prob: 0.8,
            vrt_burst_duration: Nanos::from_ms(500),
            severity: 2,
        }
    }

    /// The configuration for a named profile.
    ///
    /// # Errors
    ///
    /// [`FaultsDisabled`] for [`FaultProfile::None`]: there is
    /// deliberately no configuration to build, and the caller must take
    /// the explicit no-injector path rather than ignore a silent `None`.
    pub fn for_profile(profile: FaultProfile) -> Result<FaultConfig, FaultsDisabled> {
        match profile {
            FaultProfile::None => Err(FaultsDisabled),
            FaultProfile::Mild => Ok(FaultConfig::mild()),
            FaultProfile::Hostile => Ok(FaultConfig::hostile()),
        }
    }
}

/// Running tallies of injected faults, mirrored into `faults.injected.*`
/// counters when a registry is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Corrupted reads (each may carry several flipped bits).
    pub read_flips: u64,
    /// Stuck reads.
    pub stuck_reads: u64,
    /// Dropped writes.
    pub dropped_writes: u64,
    /// Garbled writes.
    pub garbled_writes: u64,
    /// VRT burst episodes started.
    pub vrt_bursts: u64,
}

impl FaultTally {
    /// Total injected faults across all kinds.
    pub fn total(&self) -> u64 {
        self.read_flips
            + self.stuck_reads
            + self.dropped_writes
            + self.garbled_writes
            + self.vrt_bursts
    }
}

/// A deterministic schedule of injectable faults, implementing
/// [`FaultInjector`] for installation into a
/// [`MemoryController`].
///
/// # Example
///
/// ```
/// use dram_sim::{Module, ModuleConfig};
/// use faults::{FaultPlan, FaultProfile, FaultyController};
///
/// let plan = FaultPlan::from_profile(FaultProfile::Mild, 42).unwrap();
/// let mut mc = FaultyController::new(Module::new(ModuleConfig::small_test(), 7), plan);
/// // `mc` derefs to `MemoryController`; every caller runs unmodified.
/// assert!(mc.faults_enabled());
/// ```
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SplitMix64,
    /// End of the VRT burst episode currently in effect, if any.
    burst_until: Option<Nanos>,
    tally: FaultTally,
    registry: Option<Arc<MetricsRegistry>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("tally", &self.tally)
            .field("burst_until", &self.burst_until)
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// A plan drawing from the SplitMix64 stream seeded with `seed`.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        FaultPlan {
            cfg,
            rng: SplitMix64::new(seed),
            burst_until: None,
            tally: FaultTally::default(),
            registry: None,
        }
    }

    /// The plan for a named profile.
    ///
    /// # Errors
    ///
    /// [`FaultsDisabled`] for [`FaultProfile::None`] (see
    /// [`FaultConfig::for_profile`]).
    pub fn from_profile(profile: FaultProfile, seed: u64) -> Result<Self, FaultsDisabled> {
        FaultConfig::for_profile(profile).map(|cfg| FaultPlan::new(cfg, seed))
    }

    /// Reports injected-fault counts into `registry` (as
    /// `faults.injected.*` counters) from now on.
    pub fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.registry = Some(registry);
    }

    /// The fault configuration in effect.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Running tallies of everything injected so far.
    pub fn tally(&self) -> FaultTally {
        self.tally
    }

    fn bump(&mut self, name: &str) {
        if let Some(registry) = &self.registry {
            registry.counter(name).inc();
            registry.counter(CTR_INJECTED_TOTAL).inc();
        }
    }

    /// Flight-recorder event for one injected fault. The row is logical
    /// (the injector sits on the command interface, before the device's
    /// physical remap), so it rides in `fields` rather than the
    /// physical-row coordinate.
    fn trace_injected(&self, kind: &str, bank: Bank, row: Option<RowAddr>, now: Nanos) {
        if let Some(registry) = &self.registry {
            let mut fields: [(&str, u64); 1] = [("logical_row", 0)];
            let fields = match row {
                Some(row) => {
                    fields[0].1 = u64::from(row.index());
                    &fields[..]
                }
                None => &fields[..0],
            };
            registry.trace(
                obs::TraceKind::FaultInjected,
                now.as_ns(),
                u32::from(bank.index()),
                None,
                fields,
                kind,
            );
        }
    }

    /// A pattern observably different from `requested` for garbling.
    fn garble_pattern(requested: &DataPattern) -> DataPattern {
        match requested {
            DataPattern::Zeros => DataPattern::Ones,
            _ => DataPattern::Zeros,
        }
    }
}

impl FaultInjector for FaultPlan {
    fn on_read(&mut self, bank: Bank, row: RowAddr, readout: &mut RowReadout, now: Nanos) {
        if self.rng.next_bool(self.cfg.stuck_read_prob) {
            readout.clear_flips();
            self.tally.stuck_reads += 1;
            self.bump(CTR_STUCK_READS);
            self.trace_injected("stuck_read", bank, Some(row), now);
            return;
        }
        if self.rng.next_bool(self.cfg.read_flip_prob) {
            let bits = 1 + self.rng.next_below(u64::from(self.cfg.max_read_flip_bits.max(1)));
            for _ in 0..bits {
                let bit = self.rng.next_below(u64::from(readout.row_bits().max(1))) as u32;
                readout.inject_flip(bit);
            }
            self.tally.read_flips += 1;
            self.bump(CTR_READ_FLIPS);
            self.trace_injected("read_flip", bank, Some(row), now);
        }
    }

    fn on_write(
        &mut self,
        bank: Bank,
        row: RowAddr,
        pattern: &DataPattern,
        now: Nanos,
    ) -> WriteFault {
        if self.rng.next_bool(self.cfg.dropped_write_prob) {
            self.tally.dropped_writes += 1;
            self.bump(CTR_DROPPED_WRITES);
            self.trace_injected("dropped_write", bank, Some(row), now);
            return WriteFault::Dropped;
        }
        if self.rng.next_bool(self.cfg.garbled_write_prob) {
            self.tally.garbled_writes += 1;
            self.bump(CTR_GARBLED_WRITES);
            self.trace_injected("garbled_write", bank, Some(row), now);
            return WriteFault::Garbled(Self::garble_pattern(pattern));
        }
        WriteFault::None
    }

    fn severity(&self) -> u8 {
        self.cfg.severity
    }

    fn on_tick(&mut self, now: Nanos, module: &mut Module) {
        if self.cfg.drift_amplitude > 0.0 {
            let phase = now.as_ns() as f64 / self.cfg.drift_period.as_ns().max(1) as f64;
            let drift = 1.0 + self.cfg.drift_amplitude * (std::f64::consts::TAU * phase).sin();
            module.set_retention_drift(drift);
        }
        match self.burst_until {
            Some(until) if now < until => {}
            _ => {
                if module.vrt_switch_override().is_some() {
                    module.set_vrt_switch_override(None);
                    self.burst_until = None;
                }
                if self.rng.next_bool(self.cfg.vrt_burst_prob) {
                    self.burst_until = Some(now + self.cfg.vrt_burst_duration);
                    module.set_vrt_switch_override(Some(self.cfg.vrt_burst_switch_prob));
                    self.tally.vrt_bursts += 1;
                    self.bump(CTR_VRT_BURSTS);
                    self.trace_injected("vrt_burst", Bank::new(0), None, now);
                }
            }
        }
    }
}

/// A [`MemoryController`] wrapped with a [`FaultPlan`], exposing the
/// same interface through `Deref`/`DerefMut` so existing experiment
/// code runs unmodified against the faulty substrate.
#[derive(Debug)]
pub struct FaultyController {
    inner: MemoryController,
}

impl FaultyController {
    /// A controller over `module` with `plan` installed. The plan
    /// reports its metrics into the module's registry.
    pub fn new(module: Module, plan: FaultPlan) -> Self {
        FaultyController::wrap(MemoryController::new(module), plan)
    }

    /// Installs `plan` into an existing controller.
    pub fn wrap(mut mc: MemoryController, mut plan: FaultPlan) -> Self {
        plan.attach_metrics(Arc::clone(mc.registry()));
        mc.set_fault_injector(Some(Box::new(plan)));
        FaultyController { inner: mc }
    }

    /// Removes the injector and releases the plain controller.
    pub fn into_inner(mut self) -> MemoryController {
        self.inner.set_fault_injector(None);
        self.inner
    }
}

impl Deref for FaultyController {
    type Target = MemoryController;

    fn deref(&self) -> &MemoryController {
        &self.inner
    }
}

impl DerefMut for FaultyController {
    fn deref_mut(&mut self) -> &mut MemoryController {
        &mut self.inner
    }
}

/// Installs the plan for `(profile, seed)` into `mc`, reporting into
/// the controller's registry. Returns whether an injector was installed
/// (`false` for [`FaultProfile::None`], which leaves the controller
/// untouched — the strict no-op path).
pub fn install(mc: &mut MemoryController, profile: FaultProfile, seed: u64) -> bool {
    match FaultPlan::from_profile(profile, seed) {
        Ok(mut plan) => {
            plan.attach_metrics(Arc::clone(mc.registry()));
            mc.set_fault_injector(Some(Box::new(plan)));
            true
        }
        // The explicit disabled path: profile `none` must leave the
        // controller bit-identical to one without the fault layer.
        Err(FaultsDisabled) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::ModuleConfig;

    fn module() -> Module {
        Module::new(ModuleConfig::small_test(), 11)
    }

    #[test]
    fn profile_parsing_round_trips() {
        for p in [FaultProfile::None, FaultProfile::Mild, FaultProfile::Hostile] {
            assert_eq!(p.to_string().parse::<FaultProfile>().unwrap(), p);
        }
        let err = "warm".parse::<FaultProfile>().unwrap_err();
        assert!(err.to_string().contains("warm"));
        assert!(
            err.to_string().contains("none, mild, hostile"),
            "parse error must list the valid profiles: {err}"
        );
        assert_eq!(err.valid(), FaultProfile::names());
        assert_eq!(FaultConfig::for_profile(FaultProfile::None), Err(FaultsDisabled));
        assert!(FaultPlan::from_profile(FaultProfile::None, 1).is_err());
        assert!(FaultsDisabled.to_string().contains("disabled"));
    }

    #[test]
    fn severity_escalates_with_the_profile() {
        assert_eq!(FaultConfig::mild().severity, 1);
        assert_eq!(FaultConfig::hostile().severity, 2);
        let mut mc = MemoryController::new(module());
        assert_eq!(mc.fault_severity(), 0);
        assert!(install(&mut mc, FaultProfile::Mild, 1));
        assert_eq!(mc.fault_severity(), 1);
        assert!(install(&mut mc, FaultProfile::Hostile, 1));
        assert_eq!(mc.fault_severity(), 2);
    }

    #[test]
    fn install_is_a_no_op_for_profile_none() {
        let mut mc = MemoryController::new(module());
        assert!(!install(&mut mc, FaultProfile::None, 1));
        assert!(!mc.faults_enabled());
        assert!(install(&mut mc, FaultProfile::Mild, 1));
        assert!(mc.faults_enabled());
    }

    #[test]
    fn fault_sequence_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::from_profile(FaultProfile::Hostile, seed).unwrap();
            let mut mc = FaultyController::new(module(), plan);
            let bank = Bank::new(0);
            let mut flips = Vec::new();
            for r in 0..64 {
                let row = RowAddr::new(r);
                mc.write_row(bank, row, DataPattern::Ones).unwrap();
                mc.wait_no_refresh(Nanos::from_ms(5));
                flips.push(mc.read_row(bank, row).unwrap().flipped_bits().to_vec());
            }
            flips
        };
        assert_eq!(run(5), run(5), "same seed, same faults");
        assert_ne!(run(5), run(6), "different seed, different faults");
    }

    #[test]
    fn hostile_profile_injects_and_counts() {
        let registry = MetricsRegistry::shared();
        let mut plan = FaultPlan::from_profile(FaultProfile::Hostile, 3).unwrap();
        plan.attach_metrics(Arc::clone(&registry));
        let mut mc = FaultyController::wrap(MemoryController::new(module()), plan);
        let bank = Bank::new(0);
        for round in 0..200u32 {
            let row = RowAddr::new(round % 256);
            mc.write_row(bank, row, DataPattern::Ones).unwrap();
            mc.wait_no_refresh(Nanos::from_ms(2));
            let _ = mc.read_row(bank, row).unwrap();
        }
        // The wrap() path reports into the module's registry.
        let injected = mc.registry().counter(CTR_INJECTED_TOTAL).get();
        assert!(injected > 0, "hostile profile must inject something in 200 rounds");
    }

    #[test]
    fn drift_follows_simulated_time() {
        let plan = FaultPlan::from_profile(FaultProfile::Mild, 9).unwrap();
        let amplitude = plan.config().drift_amplitude;
        let period = plan.config().drift_period;
        let mut mc = FaultyController::new(module(), plan);
        // A quarter period lands on the sine peak.
        mc.wait_no_refresh(period / 4);
        let drift = mc.module().retention_drift();
        assert!(
            (drift - (1.0 + amplitude)).abs() < 1e-6,
            "quarter-period drift should be at +amplitude, got {drift}"
        );
        mc.wait_no_refresh(period / 4);
        let back = mc.module().retention_drift();
        assert!((back - 1.0).abs() < 1e-6, "half-period drift back to 1.0, got {back}");
    }

    #[test]
    fn vrt_bursts_eventually_start_and_stop() {
        let plan = FaultPlan::from_profile(FaultProfile::Hostile, 17).unwrap();
        let mut mc = FaultyController::new(module(), plan);
        let mut saw_burst = false;
        let mut saw_clear_after_burst = false;
        for _ in 0..2_000 {
            mc.wait_no_refresh(Nanos::from_ms(1));
            match mc.module().vrt_switch_override() {
                Some(_) => saw_burst = true,
                None if saw_burst => saw_clear_after_burst = true,
                None => {}
            }
        }
        assert!(saw_burst, "hostile profile must start a burst in 2 s of ticks");
        assert!(saw_clear_after_burst, "bursts must also end");
    }

    #[test]
    fn garbled_pattern_differs_from_request() {
        for p in [DataPattern::Zeros, DataPattern::Ones, DataPattern::Checkerboard] {
            assert_ne!(FaultPlan::garble_pattern(&p), p);
        }
    }

    #[test]
    fn into_inner_detaches_the_plan() {
        let plan = FaultPlan::from_profile(FaultProfile::Mild, 1).unwrap();
        let faulty = FaultyController::new(module(), plan);
        let mc = faulty.into_inner();
        assert!(!mc.faults_enabled());
    }
}
